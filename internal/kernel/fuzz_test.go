package kernel

import (
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/parse"
	"scanraw/internal/schema"
	"scanraw/internal/tok"
)

// FuzzFusedKernel is the fuzz form of the differential property: for
// arbitrary bytes and an arbitrary (schema, column set, delimiter), the
// fused kernel and the tok→parse pipeline either both error or produce
// identical chunks. typeBits picks column types, colBits the requested
// subset, claimBias perturbs the claimed line count so the framing error
// paths fuzz too.
func FuzzFusedKernel(f *testing.F) {
	f.Add([]byte("1,2,3\n4,5,6\n"), uint16(0), uint8(0b111), byte(','), uint8(0))
	f.Add([]byte("1.5,a\n-2,b\r\n"), uint16(0b01), uint8(0b10), byte(','), uint8(0))
	f.Add([]byte("x\ty\n"), uint16(0b1010), uint8(0b11), byte('\t'), uint8(1))
	f.Add([]byte("no newline"), uint16(0b10), uint8(1), byte(','), uint8(0))
	f.Add([]byte("9223372036854775807\n"), uint16(0), uint8(1), byte(','), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, typeBits uint16, colBits uint8, delim byte, claimBias uint8) {
		// 1-8 columns, two type bits each (3 → Str like the zero value's
		// modulo); requested subset from colBits, forced non-empty.
		ncols := int(typeBits>>12)%8 + 1
		scols := make([]schema.Column, ncols)
		for i := range scols {
			scols[i] = schema.Column{Name: "c" + string(rune('a'+i)), Type: schema.Type((typeBits >> (2 * i)) % 3)}
		}
		sch := schema.MustNew(scols...)
		var cols []int
		for c := 0; c < ncols; c++ {
			if colBits&(1<<c) != 0 {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 {
			cols = []int{0}
		}
		tc := &chunk.TextChunk{Data: data, Lines: tok.CountLines(data) + int(claimBias%3)}

		k, err := For(sch, cols, delim)
		if err != nil {
			t.Fatalf("For: %v", err) // the derived column set is always valid
		}
		want, wantErr := tokParse(sch, tc, delim, cols)
		got, gotErr := k.Convert(tc)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("kernel %s, cols %v, delim %q, lines %d:\n tok+parse err: %v\n fused err:     %v\n data: %q",
				k.Name(), cols, delim, tc.Lines, wantErr, gotErr, data)
		}
		if wantErr != nil {
			return
		}
		requireEqualChunks(t, k.Name(), want, got, cols)
		want.RecycleColumns()
		got.RecycleColumns()
	})
}

// FuzzConvertWhere extends the property to push-down selection: keep
// lists and surviving rows must match ParseWhere exactly.
func FuzzConvertWhere(f *testing.F) {
	f.Add([]byte("1,2\n3,4\n"), uint8(0), uint8(1))
	f.Add([]byte("a,1\nbb,2\r\n"), uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, predColBit uint8, parity uint8) {
		sch := mixedSchema(schema.Str, schema.Int64)
		cols := []int{0, 1}
		predCol := int(predColBit % 2)
		want := int(parity % 2)
		pred := func(b []byte) bool { return len(b)%2 == want }
		tc := &chunk.TextChunk{Data: data, Lines: tok.CountLines(data)}

		k, err := For(sch, cols, ',')
		if err != nil {
			t.Fatalf("For: %v", err)
		}
		wantBC, wantKeep, wantErr := tokParseWhere(sch, tc, ',', cols, predCol, pred)
		gotBC, gotKeep, gotErr := k.ConvertWhere(tc, predCol, parse.RowPredicate(pred))
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("predCol %d: ParseWhere err %v vs ConvertWhere err %v on %q", predCol, wantErr, gotErr, data)
		}
		if wantErr != nil {
			return
		}
		if len(wantKeep) != len(gotKeep) {
			t.Fatalf("keep length %d vs %d", len(wantKeep), len(gotKeep))
		}
		for i := range wantKeep {
			if wantKeep[i] != gotKeep[i] {
				t.Fatalf("keep[%d] %d vs %d", i, wantKeep[i], gotKeep[i])
			}
		}
		requireEqualChunks(t, "where", wantBC, gotBC, cols)
		wantBC.RecycleColumns()
		gotBC.RecycleColumns()
	})
}
