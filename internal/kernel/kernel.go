// Package kernel implements fused, schema-specialized conversion: TOKENIZE
// and PARSE collapsed into a single pass over the chunk bytes. The generic
// two-stage path materializes a positional map — one (start, end) pair per
// cell — that PARSE immediately re-reads and discards; when no query needs
// the map for caching, that round trip through memory is pure overhead.
// A fused kernel walks each line once and converts every requested field
// the moment it is delimited, writing straight into pooled column vectors.
//
// Kernels are selected per (schema signature, requested column set,
// delimiter) from a small registry ordered most-specialized-first:
// hand-specialized loops for the common type shapes (a dense all-int64
// column prefix, an all-int64 subset, an int64+float64 mix) and a generic
// fused fallback that additionally handles string columns. Unrequested
// columns are skipped with bytes.IndexByte (memchr); integer fields are
// parsed inline by the delimiter scan itself, so requested int64 columns
// never pay a separate field-boundary search.
//
// Framing semantics — line termination, CRLF stripping, empty trailing
// fields, field-count errors — mirror tok.Tokenize exactly, and value
// parsing reuses the same ParseInt/ParseFloat contracts, so a fused kernel
// succeeds with byte-identical output, or fails, exactly when the
// tok→parse pipeline does. The differential and fuzz suites in this
// package assert that equivalence.
package kernel

import (
	"fmt"
	"sort"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

// runFunc converts one text chunk into the kernel's output vectors, one per
// requested column, each pre-sized to tc.Lines values.
type runFunc func(k *Kernel, tc *chunk.TextChunk, out []*chunk.Vector) error

// Kernel is a fused conversion routine specialized to one (schema,
// requested column set, delimiter) combination. A Kernel is immutable and
// safe for concurrent use; the operator builds one per run and shares it
// across its parse workers.
type Kernel struct {
	sch   *schema.Schema
	cols  []int         // requested schema ordinals, sorted ascending
	types []schema.Type // types[i] is the type of cols[i]
	gaps  []int         // gaps[i] = unrequested columns to skip before cols[i]
	delim byte
	upTo  int // fields a line must carry: max requested ordinal + 1
	name  string
	run   runFunc
}

// builder is one registry entry: a predicate over the requested shape and
// the specialized routine used when it matches.
type builder struct {
	name  string
	match func(sch *schema.Schema, cols []int) bool
	run   runFunc
}

// registry lists the kernels most-specialized-first; For picks the first
// match. The generic fused kernel matches everything, so selection never
// falls through.
var registry = []builder{
	{name: "int64-prefix", match: matchInt64Prefix, run: runInt64Prefix},
	{name: "int64-subset", match: matchAllInt64, run: runInt64Subset},
	{name: "numeric-subset", match: matchNumeric, run: runNumericSubset},
	{name: "fused-generic", match: func(*schema.Schema, []int) bool { return true }, run: runGeneric},
}

// For selects the fused kernel for the requested column set. cols must be
// non-empty, sorted ascending, and within the schema's range — the same
// contract scanraw requests already satisfy.
func For(sch *schema.Schema, cols []int, delim byte) (*Kernel, error) {
	if len(cols) == 0 {
		return nil, fmt.Errorf("kernel: no columns requested")
	}
	if !sort.IntsAreSorted(cols) {
		return nil, fmt.Errorf("kernel: columns must be sorted ascending")
	}
	for i, c := range cols {
		if c < 0 || c >= sch.NumColumns() {
			return nil, fmt.Errorf("kernel: column %d out of schema range [0,%d)", c, sch.NumColumns())
		}
		if i > 0 && cols[i-1] == c {
			return nil, fmt.Errorf("kernel: duplicate column %d", c)
		}
	}
	k := &Kernel{
		sch:   sch,
		cols:  append([]int(nil), cols...),
		types: make([]schema.Type, len(cols)),
		gaps:  make([]int, len(cols)),
		delim: delim,
		upTo:  cols[len(cols)-1] + 1,
	}
	prev := -1
	for i, c := range cols {
		k.types[i] = sch.Column(c).Type
		k.gaps[i] = c - prev - 1
		prev = c
	}
	for _, b := range registry {
		if b.match(sch, k.cols) {
			k.name = b.name
			k.run = b.run
			break
		}
	}
	return k, nil
}

// Name identifies the selected specialization (for logs and tests).
func (k *Kernel) Name() string { return k.name }

// Columns returns the requested schema ordinals (shared; do not mutate).
func (k *Kernel) Columns() []int { return k.cols }

func matchInt64Prefix(sch *schema.Schema, cols []int) bool {
	if !matchAllInt64(sch, cols) {
		return false
	}
	// A dense prefix: cols == [0, 1, ..., n-1]. Every field the walk meets
	// is requested, so the skip machinery compiles away entirely.
	return cols[len(cols)-1] == len(cols)-1
}

func matchAllInt64(sch *schema.Schema, cols []int) bool {
	for _, c := range cols {
		if sch.Column(c).Type != schema.Int64 {
			return false
		}
	}
	return true
}

func matchNumeric(sch *schema.Schema, cols []int) bool {
	for _, c := range cols {
		if sch.Column(c).Type == schema.Str {
			return false
		}
	}
	return true
}

// Convert runs the fused conversion for one text chunk, returning a binary
// chunk holding the kernel's requested columns. The output is
// byte-identical to tokenizing with tok.Tokenize(tc, upTo) and parsing with
// parse.Parser.Parse — or an error whenever that path would error.
func (k *Kernel) Convert(tc *chunk.TextChunk) (*chunk.BinaryChunk, error) {
	out := k.getVectors(tc.Lines)
	if err := k.run(k, tc, out); err != nil {
		putVectors(out)
		return nil, err
	}
	return k.install(tc.ID, tc.Lines, out)
}

// install moves the filled vectors into a binary chunk, which takes over
// their pool ownership (they are recycled through RecycleColumns from here
// on, per the chunk package's ownership rule).
func (k *Kernel) install(id, rows int, out []*chunk.Vector) (*chunk.BinaryChunk, error) {
	bc := chunk.NewBinary(k.sch, id, rows)
	for i, c := range k.cols {
		if err := bc.SetColumn(c, out[i]); err != nil {
			// Unreachable by construction (types and lengths match the
			// schema); recycle defensively rather than leak the pool.
			bc.RecycleColumns()
			putVectors(out[i:])
			return nil, err
		}
		out[i] = nil
	}
	return bc, nil
}

// getVectors acquires one pooled output vector per requested column, each
// sized to n values.
func (k *Kernel) getVectors(n int) []*chunk.Vector {
	out := make([]*chunk.Vector, len(k.cols))
	for i := range k.cols {
		out[i] = chunk.GetVector(k.types[i], n)
	}
	return out
}

// putVectors returns a failed conversion's vectors to the shared pool.
func putVectors(out []*chunk.Vector) {
	for _, v := range out {
		chunk.PutVector(v)
	}
}
