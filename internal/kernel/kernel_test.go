package kernel

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"scanraw/internal/chunk"
	"scanraw/internal/schema"
)

func intSchema(n int) *schema.Schema {
	s, err := schema.Uniform(n, schema.Int64, "c")
	if err != nil {
		panic(err)
	}
	return s
}

func mixedSchema(types ...schema.Type) *schema.Schema {
	cols := make([]schema.Column, len(types))
	for i, t := range types {
		cols[i] = schema.Column{Name: fmt.Sprintf("c%d", i), Type: t}
	}
	return schema.MustNew(cols...)
}

func textChunk(id int, text string) *chunk.TextChunk {
	lines := strings.Count(text, "\n")
	if len(text) > 0 && !strings.HasSuffix(text, "\n") {
		lines++
	}
	return &chunk.TextChunk{ID: id, Data: []byte(text), Lines: lines}
}

func TestKernelSelection(t *testing.T) {
	cases := []struct {
		name string
		sch  *schema.Schema
		cols []int
		want string
	}{
		{"dense int prefix", intSchema(4), []int{0, 1, 2, 3}, "int64-prefix"},
		{"single leading int", intSchema(4), []int{0}, "int64-prefix"},
		{"int subset", intSchema(4), []int{1, 3}, "int64-subset"},
		{"int suffix", intSchema(4), []int{3}, "int64-subset"},
		{"numeric mix", mixedSchema(schema.Int64, schema.Float64), []int{0, 1}, "numeric-subset"},
		{"float only", mixedSchema(schema.Int64, schema.Float64), []int{1}, "numeric-subset"},
		{"string present", mixedSchema(schema.Int64, schema.Str), []int{0, 1}, "fused-generic"},
		{"string only", mixedSchema(schema.Str, schema.Str), []int{1}, "fused-generic"},
	}
	for _, c := range cases {
		k, err := For(c.sch, c.cols, ',')
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if k.Name() != c.want {
			t.Errorf("%s: selected %q, want %q", c.name, k.Name(), c.want)
		}
	}
}

func TestForRejectsBadColumnSets(t *testing.T) {
	sch := intSchema(4)
	for name, cols := range map[string][]int{
		"empty":        {},
		"unsorted":     {2, 1},
		"duplicate":    {1, 1},
		"negative":     {-1},
		"out of range": {4},
	} {
		if _, err := For(sch, cols, ','); err == nil {
			t.Errorf("%s column set %v: expected error", name, cols)
		}
	}
}

func TestConvertBasic(t *testing.T) {
	sch := mixedSchema(schema.Int64, schema.Float64, schema.Str)
	k, err := For(sch, []int{0, 1, 2}, ',')
	if err != nil {
		t.Fatal(err)
	}
	tc := textChunk(7, "1,2.5,abc\n-42,0.25,\n9223372036854775807,-0.0,x y\n")
	bc, err := k.Convert(tc)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.RecycleColumns()
	if bc.ID != 7 || bc.Rows != 3 {
		t.Fatalf("got chunk %d with %d rows", bc.ID, bc.Rows)
	}
	wantInts := []int64{1, -42, math.MaxInt64}
	wantFloats := []float64{2.5, 0.25, math.Copysign(0, -1)}
	wantStrs := []string{"abc", "", "x y"}
	for r := 0; r < 3; r++ {
		if got := bc.Column(0).Ints[r]; got != wantInts[r] {
			t.Errorf("row %d col 0: got %d, want %d", r, got, wantInts[r])
		}
		if got := bc.Column(1).Floats[r]; math.Float64bits(got) != math.Float64bits(wantFloats[r]) {
			t.Errorf("row %d col 1: got %v, want %v", r, got, wantFloats[r])
		}
		if got := bc.Column(2).Strs[r]; got != wantStrs[r] {
			t.Errorf("row %d col 2: got %q, want %q", r, got, wantStrs[r])
		}
	}
}

func TestConvertCRLFAndEOF(t *testing.T) {
	sch := intSchema(2)
	k, err := For(sch, []int{0, 1}, ',')
	if err != nil {
		t.Fatal(err)
	}
	// CRLF endings, plus a trailing line with a bare '\r' and no newline.
	tc := textChunk(0, "1,2\r\n3,4\r")
	bc, err := k.Convert(tc)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.RecycleColumns()
	if got := bc.Column(1).Ints[0]; got != 2 {
		t.Errorf("CRLF row: col 1 = %d, want 2 (CR leaked into the field?)", got)
	}
	if got := bc.Column(1).Ints[1]; got != 4 {
		t.Errorf("trailing-CR row: col 1 = %d, want 4", got)
	}
}

func TestConvertErrors(t *testing.T) {
	sch := intSchema(3)
	k, err := For(sch, []int{0, 1, 2}, ',')
	if err != nil {
		t.Fatal(err)
	}
	for name, text := range map[string]string{
		"short line":      "1,2,3\n4,5\n",
		"bad digit":       "1,2x,3\n",
		"empty field":     "1,,3\n",
		"overflow":        "1,9223372036854775808,3\n",
		"lone sign":       "1,-,3\n",
		"empty data":      "",
		"only whitespace": "\n\n",
	} {
		tc := textChunk(0, text)
		if name == "empty data" {
			tc.Lines = 2 // claims lines the data does not hold
		}
		if _, err := k.Convert(tc); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// MinInt64 is valid; one digit beyond overflows.
	if bc, err := k.Convert(textChunk(0, "0,-9223372036854775808,0\n")); err != nil {
		t.Errorf("MinInt64: unexpected error %v", err)
	} else {
		if got := bc.Column(1).Ints[0]; got != math.MinInt64 {
			t.Errorf("MinInt64: got %d", got)
		}
		bc.RecycleColumns()
	}
	if _, err := k.Convert(textChunk(0, "0,-9223372036854775809,0\n")); err == nil {
		t.Error("MinInt64-1: expected overflow error")
	}
}

// TestConvertOverlongLines: lines carrying more fields than the kernel
// needs are fine — the walk stops at the last requested column, exactly
// like selective tokenizing.
func TestConvertOverlongLines(t *testing.T) {
	sch := intSchema(2)
	k, err := For(sch, []int{0, 1}, ',')
	if err != nil {
		t.Fatal(err)
	}
	bc, err := k.Convert(textChunk(0, "1,2,junk,junk\n3,4,more\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer bc.RecycleColumns()
	if bc.Column(1).Ints[0] != 2 || bc.Column(1).Ints[1] != 4 {
		t.Errorf("got %v", bc.Column(1).Ints)
	}
}

func TestConvertTabDelimited(t *testing.T) {
	sch := mixedSchema(schema.Str, schema.Int64)
	k, err := For(sch, []int{0, 1}, '\t')
	if err != nil {
		t.Fatal(err)
	}
	bc, err := k.Convert(textChunk(0, "read1\t99\nread2\t-7\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer bc.RecycleColumns()
	if bc.Column(0).Strs[1] != "read2" || bc.Column(1).Ints[1] != -7 {
		t.Errorf("got %v / %v", bc.Column(0).Strs, bc.Column(1).Ints)
	}
}
