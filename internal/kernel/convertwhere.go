package kernel

import (
	"fmt"

	"scanraw/internal/chunk"
	"scanraw/internal/parse"
	"scanraw/internal/schema"
)

// ConvertWhere is the fused counterpart of parse.Parser.ParseWhere
// (push-down selection): each line is framed once, the predicate evaluated
// on predCol's raw bytes, and the requested columns converted only for
// qualifying tuples. Value errors in dropped rows do not error — exactly
// the ParseWhere contract — while framing errors always do. The returned
// chunk holds just the qualifying rows (and must not be loaded); keep lists
// the qualifying row ordinals.
func (k *Kernel) ConvertWhere(tc *chunk.TextChunk, predCol int, pred parse.RowPredicate) (*chunk.BinaryChunk, []int, error) {
	if predCol < 0 || predCol >= k.sch.NumColumns() {
		return nil, nil, fmt.Errorf("kernel: predicate column %d out of schema range [0,%d)", predCol, k.sch.NumColumns())
	}
	data := tc.Data
	delim := k.delim
	ncols := len(k.cols)
	// The walk must frame far enough to delimit both the requested columns
	// and the predicate column.
	wUpTo := k.upTo
	if predCol+1 > wUpTo {
		wUpTo = predCol + 1
	}
	// Per-line field offsets of the requested columns, recorded during
	// framing so qualifying rows convert without a second scan.
	starts := make([]int, ncols)
	ends := make([]int, ncols)
	out := k.getVectors(tc.Lines)
	keep := make([]int, 0, tc.Lines)
	nKeep := 0
	pos := 0
	for r := 0; r < tc.Lines; r++ {
		if pos >= len(data) {
			putVectors(out)
			return nil, nil, errShort(tc, r)
		}
		rawEnd, lineEnd := lineBounds(data, pos)
		fs := pos
		ri := 0 // next requested column to record
		var ps, pe int
		for c := 0; c < wUpTo; c++ {
			fe := fieldEnd(data, fs, lineEnd, delim)
			if ri < ncols && k.cols[ri] == c {
				starts[ri], ends[ri] = fs, fe
				ri++
			}
			if c == predCol {
				ps, pe = fs, fe
			}
			if fe == lineEnd && c < wUpTo-1 {
				putVectors(out)
				return nil, nil, errFields(tc, r, c+1, wUpTo)
			}
			fs = fe + 1
		}
		if pred(data[ps:pe]) {
			for j := 0; j < ncols; j++ {
				s, e := starts[j], ends[j]
				switch k.types[j] {
				case schema.Int64:
					x, err := parse.ParseInt(data[s:e])
					if err != nil {
						putVectors(out)
						return nil, nil, fmt.Errorf("kernel: chunk %d row %d col %d: %w", tc.ID, r, k.cols[j], err)
					}
					out[j].Ints[nKeep] = x
				case schema.Float64:
					x, err := parse.ParseFloat(data[s:e])
					if err != nil {
						putVectors(out)
						return nil, nil, fmt.Errorf("kernel: chunk %d row %d col %d: %w", tc.ID, r, k.cols[j], err)
					}
					out[j].Floats[nKeep] = x
				default:
					out[j].Strs[nKeep] = string(data[s:e])
				}
			}
			keep = append(keep, r)
			nKeep++
		}
		pos = nextLine(data, rawEnd)
	}
	for _, v := range out {
		truncate(v, nKeep)
	}
	bc, err := k.install(tc.ID, nKeep, out)
	if err != nil {
		return nil, nil, err
	}
	return bc, keep, nil
}

// truncate reslices a vector's payload to its first n values (push-down
// output is at most, usually fewer than, the chunk's line count).
func truncate(v *chunk.Vector, n int) {
	switch v.Type {
	case schema.Int64:
		v.Ints = v.Ints[:n]
	case schema.Float64:
		v.Floats = v.Floats[:n]
	default:
		// Clear the dropped tail so recycled string storage does not pin
		// this chunk's bytes past its lifetime.
		clear(v.Strs[n:])
		v.Strs = v.Strs[:n]
	}
}
