package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"scanraw/internal/scanraw"
)

// olaQuery POSTs a /query with OLA query parameters and returns the
// decoded JSON response.
func olaQuery(t *testing.T, env *serverEnv, sql, params string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(env.ts.URL+"/query?"+params, "application/json",
		strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sql)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// TestOLAErrorZeroExactJSON runs the sampled path with error=0 (no early
// termination allowed) and demands the answer be byte-identical to the
// plain path on every configuration the scan can take.
func TestOLAErrorZeroExactJSON(t *testing.T) {
	configs := []scanraw.Config{
		{Workers: 0, CacheChunks: 4}, // sequential
		{Workers: 4, CacheChunks: 8}, // pipeline
		{Workers: 2, CacheChunks: 8, Policy: scanraw.Speculative, Safeguard: true}, // speculative
	}
	queries := []string{
		sumSQL,
		"SELECT COUNT(*) FROM data WHERE c1 < 500",
		"SELECT c0, COUNT(*), SUM(c1), AVG(c2) FROM data GROUP BY c0",
	}
	for ci, opCfg := range configs {
		for _, sql := range queries {
			plain := newServerEnv(t, 512, nil, Config{}, opCfg)
			sampled := newServerEnv(t, 512, nil, Config{}, opCfg)
			_, want := postQuery(t, plain, fmt.Sprintf(`{"sql": %q}`, sql))
			status, got := olaQuery(t, sampled, sql, "error=0")
			if status != http.StatusOK {
				t.Fatalf("cfg %d %q: status = %d: %v", ci, sql, status, got)
			}
			if !reflect.DeepEqual(got["rows"], want["rows"]) {
				t.Errorf("cfg %d %q: sampled rows %v, want %v", ci, sql, got["rows"], want["rows"])
			}
			stats := got["stats"].(map[string]any)
			olaSt, ok := stats["ola"].(map[string]any)
			if !ok {
				t.Fatalf("cfg %d %q: stats carry no ola block: %v", ci, sql, stats)
			}
			if olaSt["exact"] != true {
				t.Errorf("cfg %d %q: error=0 scan not exact: %v", ci, sql, olaSt)
			}
			if olaSt["max_rel_error"].(float64) != 0 {
				t.Errorf("cfg %d %q: exact max_rel_error = %v", ci, sql, olaSt["max_rel_error"])
			}
		}
	}
}

// TestOLAEarlyTermination asks for a loose tolerance on a larger table:
// the scan must stop before end-of-file, the estimate must carry a bound
// within tolerance, and the ola metrics must record all of it.
func TestOLAEarlyTermination(t *testing.T) {
	env := newServerEnv(t, 8192, nil, Config{}, scanraw.Config{Workers: 4, CacheChunks: 8})
	status, out := olaQuery(t, env, sumSQL, "error=0.1&confidence=0.95&seed=7")
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, out)
	}
	stats := out["stats"].(map[string]any)
	olaSt, ok := stats["ola"].(map[string]any)
	if !ok {
		t.Fatalf("no ola stats: %v", stats)
	}
	sampled := int(olaSt["chunks_sampled"].(float64))
	total := int(olaSt["chunks_total"].(float64))
	if !(sampled < total) {
		t.Fatalf("sampled %d of %d chunks: no early termination", sampled, total)
	}
	if olaSt["converged"] != true {
		t.Errorf("ola.converged = %v", olaSt["converged"])
	}
	if stats["terminated_early"] != true {
		t.Errorf("stats.terminated_early = %v", stats["terminated_early"])
	}
	if rel := olaSt["max_rel_error"].(float64); !(rel > 0 && rel <= 0.1) {
		t.Errorf("max_rel_error = %v, want in (0, 0.1]", rel)
	}
	// The estimate itself should be in the right neighborhood: the 95%
	// interval can miss, but not by much at this tolerance.
	est := firstValue(t, out)
	lo, hi := float64(env.want)*0.8, float64(env.want)*1.2
	if f := float64(est); f < lo || f > hi {
		t.Errorf("estimate %d outside sanity range [%v, %v] (truth %d)", est, lo, hi, env.want)
	}

	snap := env.srv.MetricsSnapshot()
	if snap.OLAQueries < 1 {
		t.Errorf("OLAQueries = %d, want >= 1", snap.OLAQueries)
	}
	if snap.OLAChunksSampled < int64(sampled) {
		t.Errorf("OLAChunksSampled = %d, want >= %d", snap.OLAChunksSampled, sampled)
	}
	if snap.OLAEarlyTerminations < 1 {
		t.Errorf("OLAEarlyTerminations = %d, want >= 1", snap.OLAEarlyTerminations)
	}

	// The /metrics endpoint surfaces the same counters end to end.
	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ola_queries_total", "ola_chunks_sampled", "ola_early_terminations"} {
		v, ok := m[key].(float64)
		if !ok || v < 1 {
			t.Errorf("/metrics %s = %v, want >= 1", key, m[key])
		}
	}
}

// TestOLAStreamConverges reads the NDJSON estimate stream: progress lines
// must carry monotonically shrinking max_rel_error, and the final line
// must be flagged.
func TestOLAStreamConverges(t *testing.T) {
	env := newServerEnv(t, 8192, nil, Config{}, scanraw.Config{Workers: 4, CacheChunks: 8})
	resp, err := http.Post(env.ts.URL+"/query?stream=ndjson&error=0.05&seed=3",
		"application/json", strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sumSQL)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	_, objs := readNDJSON(t, resp.Body)
	if len(objs) < 3 {
		t.Fatalf("stream has %d object lines, want header + estimates + trailer", len(objs))
	}
	if _, ok := objs[0]["columns"]; !ok {
		t.Fatalf("first line is not a columns header: %v", objs[0])
	}
	if _, ok := objs[len(objs)-1]["stats"]; !ok {
		t.Fatalf("last line is not a stats trailer: %v", objs[len(objs)-1])
	}
	var (
		estimates []map[string]any
		finals    int
	)
	for _, o := range objs[1 : len(objs)-1] {
		if _, ok := o["final"]; !ok {
			t.Fatalf("unexpected stream line: %v", o)
		}
		estimates = append(estimates, o)
		if o["final"] == true {
			finals++
		}
	}
	if len(estimates) < 2 {
		t.Fatalf("only %d estimate lines; the stream should converge over several", len(estimates))
	}
	if finals != 1 || estimates[len(estimates)-1]["final"] != true {
		t.Fatalf("want exactly one final line, at the end; got %d", finals)
	}
	prev := -1.0
	for i, e := range estimates[:len(estimates)-1] {
		rel, ok := e["max_rel_error"].(float64)
		if !ok {
			continue // null: bound not formed yet
		}
		if prev >= 0 && rel >= prev {
			t.Errorf("line %d: max_rel_error %v did not shrink from %v", i, rel, prev)
		}
		prev = rel
	}
	final := estimates[len(estimates)-1]
	if rel, ok := final["max_rel_error"].(float64); !ok || rel > 0.05 {
		t.Errorf("final max_rel_error = %v, want <= 0.05", final["max_rel_error"])
	}
	if sampled := final["chunks_sampled"].(float64); sampled >= final["chunks_total"].(float64) {
		t.Errorf("stream sampled every chunk (%v of %v): no early termination", sampled, final["chunks_total"])
	}
}

// TestOLAStreamExactMatchesPlain compares the error=0 NDJSON final line
// against the plain aggregate NDJSON row.
func TestOLAStreamExactMatchesPlain(t *testing.T) {
	env := newServerEnv(t, 1024, nil, Config{}, scanraw.Config{Workers: 2, CacheChunks: 8})
	sql := "SELECT c0, SUM(c1), COUNT(*) FROM data GROUP BY c0"
	body := fmt.Sprintf(`{"sql": %q}`, sql)

	plainResp, err := http.Post(env.ts.URL+"/query?stream=ndjson", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	plainRows, _ := readNDJSON(t, plainResp.Body)
	plainResp.Body.Close()

	olaResp, err := http.Post(env.ts.URL+"/query?stream=ndjson&error=0", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer olaResp.Body.Close()
	_, objs := readNDJSON(t, olaResp.Body)
	var final map[string]any
	for _, o := range objs {
		if o["final"] == true {
			final = o
		}
	}
	if final == nil {
		t.Fatalf("no final line in stream: %v", objs)
	}
	gotRows, _ := json.Marshal(final["rows"])
	wantRows, _ := json.Marshal(plainRows)
	if string(gotRows) != string(wantRows) {
		t.Errorf("error=0 stream rows %s, want %s", gotRows, wantRows)
	}
	for _, brow := range final["bounds"].([]any) {
		for _, b := range brow.([]any) {
			if b.(float64) != 0 {
				t.Errorf("exact final line has nonzero bound %v", b)
			}
		}
	}
}

// TestOLAParamValidation covers the request-surface contract: explicit
// ?error= on an ineligible query is a 400, as are malformed parameters;
// a server-wide default silently falls back to the plain path.
func TestOLAParamValidation(t *testing.T) {
	env := newServerEnv(t, 256, nil, Config{}, scanraw.Config{Workers: 2})
	cases := []struct {
		sql, params string
	}{
		{"SELECT c0, c1 FROM data", "error=0.01"},                          // not an aggregate
		{"SELECT SUM(c0) FROM data GROUP BY c1 ORDER BY c1", "error=0.01"}, // ORDER BY
		{sumSQL, "error=nope"},
		{sumSQL, "error=-0.5"},
		{sumSQL, "error=0.01&confidence=1.5"},
		{sumSQL, "error=0.01&seed=x"},
	}
	for _, c := range cases {
		status, out := olaQuery(t, env, c.sql, c.params)
		if status != http.StatusBadRequest {
			t.Errorf("%q ?%s: status = %d, want 400 (%v)", c.sql, c.params, status, out)
		}
	}

	// A server default tolerance leaves ineligible queries on the plain
	// path — and runs eligible ones sampled without any query parameter.
	defEnv := newServerEnv(t, 256, nil, Config{OLAError: 0.2}, scanraw.Config{Workers: 2})
	status, out := olaQuery(t, defEnv, "SELECT c0, c1 FROM data WHERE c0 > 990", "")
	if status != http.StatusOK {
		t.Fatalf("ineligible query under server default: status = %d: %v", status, out)
	}
	if _, ok := out["stats"].(map[string]any)["ola"]; ok {
		t.Errorf("ineligible query grew ola stats: %v", out["stats"])
	}
	status, out = olaQuery(t, defEnv, sumSQL, "")
	if status != http.StatusOK {
		t.Fatalf("eligible query under server default: status = %d: %v", status, out)
	}
	if _, ok := out["stats"].(map[string]any)["ola"]; !ok {
		t.Errorf("server default did not engage OLA: %v", out["stats"])
	}
}
