package server

import (
	"sync/atomic"
	"time"

	"scanraw/internal/scanraw"
)

// counters is the server's cumulative serving accounting. Everything is
// atomic: the hot path only ever increments.
type counters struct {
	queries   atomic.Int64 // admitted queries
	rejected  atomic.Int64 // shed with 429
	cancelled atomic.Int64 // client gone mid-query
	timedOut  atomic.Int64
	failed    atomic.Int64

	execRequests atomic.Int64 // admitted coordinator /exec shards

	scans     atomic.Int64 // physical scans dispatched (batches)
	coalesced atomic.Int64 // queries that shared their scan with others

	terminatedEarly atomic.Int64 // scans stopped before end-of-file by demand
	chunksSaved     atomic.Int64 // chunks those scans never read or converted

	olaQueries           atomic.Int64 // online-aggregation (sampled) queries admitted
	olaChunksSampled     atomic.Int64 // chunks fed to OLA estimators, all queries
	olaEarlyTerminations atomic.Int64 // OLA scans stopped by bound convergence

	deliveredCache   atomic.Int64
	deliveredDB      atomic.Int64
	deliveredRaw     atomic.Int64
	deliveredPartial atomic.Int64 // partial-width hits: loaded groups merged with a narrow conversion
	skipped          atomic.Int64
	chunksLoaded     atomic.Int64 // chunks written to the database during scans
	specGroupWrites  atomic.Int64 // column groups written by payoff-ranked speculation

	perPolicy [5]atomic.Int64 // indexed by scanraw.WritePolicy
}

func (c *counters) policyCount(p scanraw.WritePolicy) {
	if int(p) < len(c.perPolicy) {
		c.perPolicy[p].Add(1)
	}
}

// recordScan folds one shared scan's stats into the counters.
func (s *Server) recordScan(st scanraw.RunStats, batchSize int) {
	s.met.scans.Add(1)
	if batchSize > 1 {
		s.met.coalesced.Add(int64(batchSize))
	}
	s.met.deliveredCache.Add(int64(st.DeliveredCache))
	s.met.deliveredDB.Add(int64(st.DeliveredDB))
	s.met.deliveredRaw.Add(int64(st.DeliveredRaw))
	s.met.deliveredPartial.Add(int64(st.DeliveredPartial))
	s.met.skipped.Add(int64(st.SkippedChunks))
	s.met.chunksLoaded.Add(int64(st.WrittenDuringRun))
	s.met.specGroupWrites.Add(int64(st.GroupWritesDuringRun))
	if st.TerminatedEarly {
		s.met.terminatedEarly.Add(1)
		s.met.chunksSaved.Add(int64(st.ChunksSaved))
	}
}

// ChunkCounts breaks chunk deliveries down by source. Partial counts
// partial-width hits — chunks assembled from loaded column groups plus a
// conversion of only the missing groups.
type ChunkCounts struct {
	Cache   int64 `json:"cache"`
	DB      int64 `json:"db"`
	Raw     int64 `json:"raw"`
	Partial int64 `json:"partial"`
	Skipped int64 `json:"skipped"`
}

// MetricsSnapshot is the GET /metrics payload: live utilization over the
// interval since the previous snapshot, plus cumulative serving counters.
type MetricsSnapshot struct {
	UptimeMS int64 `json:"uptime_ms"`

	Queries          int64 `json:"queries_total"`
	Rejected         int64 `json:"rejected_total"`
	Cancelled        int64 `json:"cancelled_total"`
	TimedOut         int64 `json:"timed_out_total"`
	Failed           int64 `json:"failed_total"`
	ExecRequests     int64 `json:"exec_requests_total"` // coordinator-assigned shard executions
	Draining         bool  `json:"draining"`
	PhysicalScans    int64 `json:"physical_scans_total"`
	CoalescedQueries int64 `json:"coalesced_queries_total"`
	ActiveQueries    int   `json:"active_queries"`
	AdmissionSlots   int   `json:"admission_slots"`

	// Demand-driven termination: scans that stopped before end-of-file
	// because every query they served was provably complete, and the chunks
	// those scans never had to read or convert.
	ScansTerminatedEarly     int64 `json:"scans_terminated_early"`
	ChunksSavedByTermination int64 `json:"chunks_saved_by_termination"`

	// Online aggregation: sampled-scan queries, the chunks their
	// estimators observed, and the scans stopped early because the
	// confidence bounds met the requested error tolerance.
	OLAQueries           int64 `json:"ola_queries_total"`
	OLAChunksSampled     int64 `json:"ola_chunks_sampled"`
	OLAEarlyTerminations int64 `json:"ola_early_terminations"`

	// WorkerBusyPercent is in percent-of-one-core units (8 busy workers
	// report 800), matching the paper's Fig. 9 CPU axis; the disk percents
	// are fractions of wall-clock the device was servicing transfers.
	WorkerBusyPercent float64 `json:"worker_busy_percent"`
	DiskBusyPercent   float64 `json:"disk_busy_percent"`
	DiskReadPercent   float64 `json:"disk_read_percent"`
	DiskWritePercent  float64 `json:"disk_write_percent"`

	CacheHitRate    float64     `json:"cache_hit_rate"`
	ChunksDelivered ChunkCounts `json:"chunks_delivered"`
	ChunksLoaded    int64       `json:"chunks_loaded_total"`
	// SpecGroupWrites counts column groups written by payoff-ranked
	// speculation (narrower than a chunk; full-chunk scan-order writes land
	// in ChunksLoaded instead).
	SpecGroupWrites int64 `json:"spec_group_writes_total"`

	// WorkloadWeights is each table's live per-column access profile —
	// exponentially decayed counts, the payoff policy's frequency term.
	WorkloadWeights map[string][]float64 `json:"workload_weights"`

	// Pin-leak gauges, aggregated over every live operator's chunk cache.
	// Pins are transient (held only while a chunk is being consumed), so a
	// pin count that stays above zero on an idle server is a leaked pin —
	// the pinned entries can never be evicted again.
	CacheEntries       int `json:"cache_entries"`
	CachePinnedEntries int `json:"cache_pinned_entries"`
	CachePinCount      int `json:"cache_pin_count"`

	QueriesByPolicy map[string]int64 `json:"queries_by_policy"`
	Tables          int              `json:"tables"`
	LiveOperators   int              `json:"live_operators"`

	// Warm-start recovery gauges (zero on a cold start or a non-durable
	// store): chunks whose persisted pages survived verification, chunks
	// dropped during recovery, and how long replay + verification took.
	StoreChunksRecovered   int   `json:"store_chunks_recovered"`
	StoreChunksInvalidated int   `json:"store_chunks_invalidated"`
	StoreRecoveryMS        int64 `json:"store_recovery_ms"`
}

// MetricsSnapshot assembles the live metrics report. Utilization covers
// the interval since the previous call (the meter differentiates the
// cumulative busy counters).
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	sample := s.meter.Sample(0)
	cache := s.met.deliveredCache.Load()
	db := s.met.deliveredDB.Load()
	raw := s.met.deliveredRaw.Load()
	partial := s.met.deliveredPartial.Load()
	snap := MetricsSnapshot{
		UptimeMS:         time.Since(s.start).Milliseconds(),
		Queries:          s.met.queries.Load(),
		Rejected:         s.met.rejected.Load(),
		Cancelled:        s.met.cancelled.Load(),
		TimedOut:         s.met.timedOut.Load(),
		Failed:           s.met.failed.Load(),
		ExecRequests:     s.met.execRequests.Load(),
		Draining:         s.draining.Load(),
		PhysicalScans:    s.met.scans.Load(),
		CoalescedQueries: s.met.coalesced.Load(),
		ActiveQueries:    len(s.slots),
		AdmissionSlots:   s.cfg.MaxConcurrent,

		ScansTerminatedEarly:     s.met.terminatedEarly.Load(),
		ChunksSavedByTermination: s.met.chunksSaved.Load(),

		OLAQueries:           s.met.olaQueries.Load(),
		OLAChunksSampled:     s.met.olaChunksSampled.Load(),
		OLAEarlyTerminations: s.met.olaEarlyTerminations.Load(),

		WorkerBusyPercent: sample.CPUPercent,
		DiskBusyPercent:   sample.IOPercent,
		DiskReadPercent:   sample.ReadPercent,
		DiskWritePercent:  sample.WritePercent,

		ChunksDelivered: ChunkCounts{
			Cache:   cache,
			DB:      db,
			Raw:     raw,
			Partial: partial,
			Skipped: s.met.skipped.Load(),
		},
		ChunksLoaded:    s.met.chunksLoaded.Load(),
		SpecGroupWrites: s.met.specGroupWrites.Load(),
		QueriesByPolicy: make(map[string]int64),
		LiveOperators:   s.reg.Len(),
	}
	rec := s.store.RecoveryStats()
	snap.StoreChunksRecovered = rec.ChunksRecovered
	snap.StoreChunksInvalidated = rec.ChunksInvalidated
	snap.StoreRecoveryMS = rec.RecoveryMS
	cs := s.reg.CacheStats()
	snap.CacheEntries = cs.Entries
	snap.CachePinnedEntries = cs.PinnedEntries
	snap.CachePinCount = cs.PinCount
	if total := cache + db + raw + partial; total > 0 {
		snap.CacheHitRate = float64(cache) / float64(total)
	}
	for i := range s.met.perPolicy {
		if n := s.met.perPolicy[i].Load(); n > 0 {
			snap.QueriesByPolicy[scanraw.WritePolicy(i).String()] = n
		}
	}
	s.mu.RLock()
	snap.Tables = len(s.tables)
	snap.WorkloadWeights = make(map[string][]float64, len(s.tables))
	for name, e := range s.tables {
		if e.tracker.Total() > 0 {
			snap.WorkloadWeights[name] = e.tracker.Weights()
		}
	}
	s.mu.RUnlock()
	return snap
}
