package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/ola"
	"scanraw/internal/scanraw"
)

// executor is the engine surface a pending query consumes chunks with:
// the serial engine.Executor, the fan-out engine.ParallelExecutor, or the
// server's streaming NDJSON consumer.
type executor interface {
	Consume(bc *scanraw.BinaryChunk) error
	Result() (*engine.Result, error)
}

// pending is one admitted query waiting to be served by a shared scan.
type pending struct {
	ctx    context.Context
	q      *engine.Query
	ex     executor
	result chan pendingResult // buffered(1): the batch never blocks on it

	// consumeWorkers is the consume parallelism this query asked the scan
	// for (1 = classic serial delivery).
	consumeWorkers int
	// stream, when non-nil, consumes rows incrementally; the scan's skip
	// decisions feed its reorder frontier and its satisfaction signal feeds
	// demand-driven termination.
	stream rowStreamer
	// olaRunner, when non-nil, marks an online-aggregation query: the scan
	// visits chunks in the runner's seeded sample order, carries no skip
	// filter, and terminates once the runner's bounds converge. OLA queries
	// always dispatch solo — a sampled visit order cannot be shared.
	olaRunner *ola.Runner
	olaSeed   int64

	// cancelled flips once the query's context dies mid-scan; the delivery
	// path stops feeding its executor from then on.
	cancelled atomic.Bool
	// consumeErr records this query's own execution error without failing
	// the batch for everyone else. With parallel consume the delivery path
	// runs on several goroutines, so the error latches behind a mutex.
	errMu      sync.Mutex
	consumeErr error
}

func (p *pending) setConsumeErr(err error) {
	if err == nil {
		return
	}
	p.errMu.Lock()
	if p.consumeErr == nil {
		p.consumeErr = err
	}
	p.errMu.Unlock()
}

func (p *pending) consumeError() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.consumeErr
}

// pendingResult is what the batch deposits for each member query.
type pendingResult struct {
	res       *engine.Result
	scan      scanraw.RunStats
	shared    scanraw.SharedStats
	batchSize int
	err       error
}

// batcher coalesces concurrent queries against one raw file into shared
// scans. The first query to arrive opens a coalescing window; everything
// that lands before the window closes (or the batch fills) is dispatched
// as one RunShared call — one physical scan serving the whole batch.
type batcher struct {
	srv      *Server
	op       *scanraw.Operator
	window   time.Duration
	maxBatch int

	mu       sync.Mutex
	queue    []*pending
	windowed bool // a window goroutine is pending for the current queue
}

// submit enqueues a query and arranges for its batch to be dispatched.
//
// Demand-aware admission: a query with no termination profile joining a
// window whose members all carry one would force the shared scan to
// end-of-file — un-terminating a batch that could stop early (and, had the
// batch already been draining, resurrecting chunk deliveries its members
// no longer want). Such a newcomer dispatches alone instead of coalescing.
func (b *batcher) submit(p *pending) {
	if p.olaRunner != nil {
		// A sampled scan's visit order is its statistical contract; the
		// shared-scan path rejects multi-member ordered batches, so OLA
		// queries never join (or open) a coalescing window.
		go b.execute([]*pending{p})
		return
	}
	b.mu.Lock()
	if len(b.queue) > 0 && !scanraw.HasTerminationProfile(p.q) && allTerminating(b.queue) {
		b.mu.Unlock()
		go b.execute([]*pending{p})
		return
	}
	b.queue = append(b.queue, p)
	if len(b.queue) >= b.maxBatch {
		batch := b.queue
		b.queue = nil
		b.windowed = false
		b.mu.Unlock()
		go b.execute(batch)
		return
	}
	opened := !b.windowed
	if opened {
		b.windowed = true
	}
	b.mu.Unlock()
	if !opened {
		return // an open window will pick this query up
	}
	go func() {
		if b.window > 0 {
			time.Sleep(b.window)
		}
		b.mu.Lock()
		batch := b.queue
		b.queue = nil
		b.windowed = false
		b.mu.Unlock()
		if len(batch) > 0 {
			b.execute(batch)
		}
	}()
}

// allTerminating reports whether every queued query carries a whole-scan
// termination signal (streamed LIMIT without ORDER BY).
func allTerminating(queue []*pending) bool {
	for _, p := range queue {
		if !scanraw.HasTerminationProfile(p.q) {
			return false
		}
	}
	return true
}

// countedConsumer is the optional executor refinement reporting per-chunk
// matched-row counts — the engine executors and both streamers implement
// it; demand-driven termination needs the counts for its LIMIT frontier.
type countedConsumer interface {
	ConsumeCounted(bc *scanraw.BinaryChunk) (int, error)
}

// execute runs one batch through the shared-scan path and deposits each
// member's result. Batches for the same operator serialize on the
// operator's run mutex; batches for different files run concurrently.
func (b *batcher) execute(batch []*pending) {
	// The scan context cancels only when every member has gone away —
	// one client disconnecting must not kill the scan for the others.
	scanCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	execDone := make(chan struct{})
	defer close(execDone)
	var live atomic.Int64
	live.Store(int64(len(batch)))
	for _, p := range batch {
		go func(p *pending) {
			select {
			case <-p.ctx.Done():
				p.cancelled.Store(true)
				if live.Add(-1) == 0 {
					cancel()
				}
			case <-execDone:
			}
		}(p)
	}

	reqs := make([]scanraw.Request, len(batch))
	for i, p := range batch {
		p := p
		cols := p.q.RequiredColumns()
		if len(cols) == 0 {
			// COUNT(*)-style queries touch no columns but still need every
			// row scanned; converting the first column is the cheapest way.
			cols = []int{0}
		}
		skip := scanraw.SkipFromPredicate(p.q.Where)
		if p.olaRunner != nil {
			// Statistics-based elimination would punch holes in the sample
			// order; the estimator needs every chunk it draws.
			skip = nil
		}
		if p.stream != nil {
			// Streaming members watch their skip decisions so the reorder
			// frontier can advance past eliminated chunks.
			orig := skip
			stream := p.stream
			skip = func(meta *dbstore.ChunkMeta) bool {
				if orig != nil && orig(meta) {
					stream.markSkipped(meta.ID)
					return true
				}
				return false
			}
		}
		// Demand-driven termination wiring. The executor's matched-row
		// counts (when it reports them) advance the member's LIMIT frontier,
		// its top-k bound (when it has one) prunes chunks, and the member's
		// Satisfied folds its own completeness with liveness: a dead member
		// wants no more chunks either, so a shared scan whose every member
		// is satisfied or gone stops before end-of-file.
		var boundSrc interface {
			Bound() ([]engine.Value, bool)
		}
		if bs, ok := p.ex.(interface {
			Bound() ([]engine.Value, bool)
		}); ok {
			boundSrc = bs
		}
		dem := scanraw.NewDemand(p.q, boundSrc)
		memberDone := func() bool {
			if p.cancelled.Load() || p.ctx.Err() != nil || p.consumeError() != nil {
				return true
			}
			if p.stream != nil && p.stream.satisfied() {
				return true
			}
			if p.olaRunner != nil && p.olaRunner.Satisfied() {
				return true
			}
			return dem.IsSatisfied()
		}
		var order func(int) []int
		if p.olaRunner != nil {
			order = p.olaRunner.Order(p.olaSeed)
		}
		reqs[i] = scanraw.Request{
			Columns:         cols,
			Skip:            dem.WrapSkip(skip),
			Order:           order,
			ParallelConsume: p.consumeWorkers,
			Satisfied:       memberDone,
			// Deliver feeds this member's executor but never fails the
			// whole batch: a dead member is skipped, a member whose own
			// evaluation errors keeps the error for itself. With parallel
			// consume this closure runs on several goroutines at once (the
			// executor behind it is concurrency-safe then).
			Deliver: func(bc *scanraw.BinaryChunk) error {
				if memberDone() {
					return nil
				}
				if cc, ok := p.ex.(countedConsumer); ok {
					matched, err := cc.ConsumeCounted(bc)
					if err != nil {
						p.setConsumeErr(err)
						return nil
					}
					dem.RecordChunk(bc.ID, matched)
					return nil
				}
				p.setConsumeErr(p.ex.Consume(bc))
				return nil
			},
		}
	}

	st, per, err := b.op.RunSharedContext(scanCtx, reqs)
	b.srv.recordScan(st, len(batch))

	for i, p := range batch {
		pr := pendingResult{scan: st, batchSize: len(batch)}
		if per != nil {
			pr.shared = per[i]
		}
		switch {
		case p.ctx.Err() != nil:
			pr.err = p.ctx.Err()
		case p.consumeError() != nil:
			pr.err = p.consumeError()
		case err != nil:
			pr.err = err
		default:
			pr.res, pr.err = p.ex.Result()
		}
		p.result <- pr
	}
}
