package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/gen"
	"scanraw/internal/scanraw"
	storepkg "scanraw/internal/store"
)

// newDurableServerEnv stands up a server over the durable storage stack
// (file-backed blobs + manifest journal) rooted at dir, the way scanrawd
// assembles it for -data-dir. Reopening on the same dir is a warm start.
func newDurableServerEnv(t *testing.T, dir string) (*serverEnv, *storepkg.Manifest) {
	t.Helper()
	fd, err := storepkg.OpenFileDisk(filepath.Join(dir, "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	man, err := storepkg.OpenManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dbstore.OpenDurable(fd, man)
	if err != nil {
		t.Fatal(err)
	}
	spec := gen.CSVSpec{Rows: 256, Cols: 4, Seed: 42, MaxValue: 1000}
	raw := gen.Bytes(spec)
	fd.Preload("raw/data.csv", raw)
	table, err := store.EnsureTable("data", spec.Schema(), "raw/data.csv", storepkg.FingerprintBytes(raw))
	if err != nil {
		t.Fatal(err)
	}
	s := New(store, Config{MaxConcurrent: 4})
	if err := s.AddTable(table, scanraw.Config{
		Workers: 2, ChunkLines: 64, Policy: scanraw.Speculative, Safeguard: true,
		CacheChunks: 4, CollectStats: true,
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	cols := make([]int, spec.Cols)
	for i := range cols {
		cols[i] = i
	}
	return &serverEnv{
		srv: s, ts: ts, spec: spec,
		want: gen.SumRange(spec, cols, 0, spec.Rows),
	}, man
}

func metricsSnapshot(t *testing.T, env *serverEnv) map[string]any {
	t.Helper()
	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestServerWarmStartMetrics runs the full durable lifecycle through the
// server: query, graceful drain (checkpoint), restart on the same data
// directory, and verifies the /metrics recovery gauges report the warm
// start and the second server answers from the database.
func TestServerWarmStartMetrics(t *testing.T) {
	dir := t.TempDir()

	env, man := newDurableServerEnv(t, dir)
	status, out := postQuery(t, env, `{"sql": "`+sumSQL+`"}`)
	if status != http.StatusOK {
		t.Fatalf("cold query status = %d: %v", status, out)
	}
	if got := int64(out["rows"].([]any)[0].([]any)[0].(float64)); got != env.want {
		t.Fatalf("cold sum = %d, want %d", got, env.want)
	}
	// A cold start reports zero recovery gauges.
	m := metricsSnapshot(t, env)
	if m["store_chunks_recovered"].(float64) != 0 {
		t.Errorf("cold start reports recovered chunks: %v", m["store_chunks_recovered"])
	}
	// Graceful shutdown: drain in-flight work and checkpoint the catalog.
	if err := env.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := man.AppendsSinceCheckpoint(); n != 0 {
		t.Errorf("drain left %d journal records uncompacted", n)
	}
	if err := man.Close(); err != nil {
		t.Fatal(err)
	}

	env2, man2 := newDurableServerEnv(t, dir)
	defer man2.Close()
	m = metricsSnapshot(t, env2)
	if m["store_chunks_recovered"].(float64) == 0 {
		t.Error("warm start reports no recovered chunks")
	}
	if m["store_chunks_invalidated"].(float64) != 0 {
		t.Errorf("clean warm start invalidated chunks: %v", m["store_chunks_invalidated"])
	}
	if _, ok := m["store_recovery_ms"]; !ok {
		t.Error("store_recovery_ms gauge missing from /metrics")
	}
	status, out = postQuery(t, env2, `{"sql": "`+sumSQL+`"}`)
	if status != http.StatusOK {
		t.Fatalf("warm query status = %d: %v", status, out)
	}
	if got := int64(out["rows"].([]any)[0].([]any)[0].(float64)); got != env.want {
		t.Errorf("warm sum = %d, want %d", got, env.want)
	}
	m = metricsSnapshot(t, env2)
	delivered := m["chunks_delivered"].(map[string]any)
	if delivered["db"].(float64) == 0 {
		t.Errorf("warm query delivered nothing from the database: %v", delivered)
	}
	if err := env2.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestDrainShedsNewQueries verifies the shutdown sequencing: once Drain has
// claimed the admission slots, late arrivals are shed with 429 rather than
// racing the checkpoint.
func TestDrainShedsNewQueries(t *testing.T) {
	env, man := newDurableServerEnv(t, t.TempDir())
	defer man.Close()
	if err := env.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(env.ts.URL+"/query", "application/json",
		strings.NewReader(`{"sql": "`+sumSQL+`"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("query during drain: status = %d, want 429", resp.StatusCode)
	}
}
