package server

import (
	"math"
	"net/http"

	"scanraw/internal/engine"
	"scanraw/internal/ola"
	"scanraw/internal/scanraw"
	"scanraw/internal/schema"
)

// olaStreamer serves an online-aggregation query as NDJSON: a columns
// header, a sequence of converging estimate lines, a final line, and the
// stats trailer. Estimate lines are emitted only when the worst relative
// bound strictly shrinks, so the stream's reported error is monotone
// even though individual snapshots can wiggle; every line flushes
// immediately — the whole point is that the client sees the estimate
// converge live.
type olaStreamer struct {
	streamBase
	q      *engine.Query
	runner *ola.Runner

	// lastRel is the MaxRel of the last emitted progress line; only a
	// strictly smaller bound earns another line. Guarded by streamBase.mu.
	lastRel float64
}

func newOLAStreamer(q *engine.Query, sch *schema.Schema, cfg ola.Config) (*olaStreamer, error) {
	st := &olaStreamer{q: q, lastRel: math.Inf(1)}
	r, err := ola.NewRunner(q, sch, cfg, st.progress)
	if err != nil {
		return nil, err
	}
	st.runner = r
	return st, nil
}

func (st *olaStreamer) start(w http.ResponseWriter) { st.bind(w, st.columns()) }

func (st *olaStreamer) columns() []string {
	cols := make([]string, len(st.q.Items))
	for i, it := range st.q.Items {
		cols[i] = it.Name()
	}
	return cols
}

func (st *olaStreamer) Consume(bc *scanraw.BinaryChunk) error { return st.runner.Consume(bc) }

func (st *olaStreamer) ConsumeCounted(bc *scanraw.BinaryChunk) (int, error) {
	return st.runner.ConsumeCounted(bc)
}

// markSkipped is a no-op: sampled scans carry no skip filter (a skipped
// chunk would be a hole in the sample order).
func (st *olaStreamer) markSkipped(int) {}

// satisfied is the demand-termination signal: the bounds converged.
func (st *olaStreamer) satisfied() bool { return st.runner.Satisfied() }

// progress is the runner's frontier callback.
func (st *olaStreamer) progress(s ola.Snapshot) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !(s.MaxRel < st.lastRel) {
		return
	}
	st.lastRel = s.MaxRel
	st.emitSnapshotLocked(s, false)
}

// emitSnapshotLocked writes one estimate line. NaN/Inf (undefined
// estimates, unbounded error) encode as null — encoding/json cannot
// represent them and would silently drop the whole line.
func (st *olaStreamer) emitSnapshotLocked(s ola.Snapshot, final bool) {
	if st.closed || st.enc == nil {
		return
	}
	rows := make([][]any, len(s.Groups))
	bounds := make([][]any, len(s.Groups))
	for i, g := range s.Groups {
		rows[i] = sanitizedRow(g.Values)
		bs := make([]any, len(g.Bounds))
		for j, b := range g.Bounds {
			bs[j] = jsonFloat(b)
		}
		bounds[i] = bs
	}
	_ = st.enc.Encode(map[string]any{
		"rows":           rows,
		"bounds":         bounds,
		"chunks_sampled": s.Chunks,
		"chunks_total":   s.Total,
		"max_rel_error":  jsonFloat(s.MaxRel),
		"final":          final,
	})
	st.emitted++
	if st.flusher != nil {
		st.flusher.Flush()
	}
}

// Result finalizes the stream: the definitive line — the exact engine
// answer when the scan covered the whole file, the last estimate
// otherwise — goes out with "final": true. The returned result carries
// only the columns; rows are already on the wire.
func (st *olaStreamer) Result() (*engine.Result, error) {
	res, err := st.runner.Result()
	if err != nil {
		return nil, err
	}
	last := st.runner.LastSnapshot()
	exact := st.runner.Exact()
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.enc == nil {
		return &engine.Result{Cols: res.Cols}, nil
	}
	rows := make([][]any, len(res.Rows))
	bounds := make([][]any, len(res.Rows))
	for i, row := range res.Rows {
		rows[i] = sanitizedRow(row)
		bs := make([]any, len(row))
		for j := range bs {
			switch {
			case exact:
				bs[j] = 0.0 // a full scan's answer has no uncertainty
			case i < len(last.Groups) && j < len(last.Groups[i].Bounds):
				bs[j] = jsonFloat(last.Groups[i].Bounds[j])
			default:
				bs[j] = 0.0
			}
		}
		bounds[i] = bs
	}
	maxRel := last.MaxRel
	if exact {
		maxRel = 0
	}
	_ = st.enc.Encode(map[string]any{
		"rows":           rows,
		"bounds":         bounds,
		"chunks_sampled": last.Chunks,
		"chunks_total":   last.Total,
		"max_rel_error":  jsonFloat(maxRel),
		"final":          true,
	})
	if st.flusher != nil {
		st.flusher.Flush()
	}
	return &engine.Result{Cols: res.Cols}, nil
}

// jsonFloat maps a float into a JSON-encodable value: NaN and ±Inf
// become null.
func jsonFloat(f float64) any {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil
	}
	return f
}

// sanitizedRow is jsonRow with NaN/Inf floats nulled (estimate rows can
// hold them before enough data arrives).
func sanitizedRow(row []engine.Value) []any {
	out := jsonRow(row)
	for i, v := range row {
		if v.Typ == schema.Float64 {
			out[i] = jsonFloat(v.Float)
		}
	}
	return out
}
