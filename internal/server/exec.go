package server

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"scanraw/internal/cluster"
	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/scanraw"
)

// Worker-side distributed execution: POST /exec runs one query over an
// assigned chunk range of a local table and streams the result back to
// the coordinator as CRC-framed cluster messages. Two stream shapes:
//
//   - rows: qualifying rows go out incrementally in canonical (chunk,
//     row) order as MsgRows frames, one per chunk — the shape streamed
//     LIMIT queries need so the coordinator can cancel the scan the
//     moment its global LIMIT is satisfied. The worker's own demand
//     layer terminates the local scan early too.
//   - partial: the scan folds into engine partials which are merged,
//     serialized (chunk provenance shifted into the global ID space by
//     the assignment's base), and shipped as one MsgPartial frame —
//     the shape aggregates, GROUP BY, and ORDER BY need.
//
// /exec rides the same admission path as /query (a slot or a 429) and
// the same operator, so remote shards coexist with local serving and
// the operator's run mutex serializes them against coalesced batches.

// handleExec serves one coordinator-assigned shard execution.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	var er cluster.ExecRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&er); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	if er.Mode != cluster.ModeRows && er.Mode != cluster.ModePartial {
		writeError(w, http.StatusBadRequest, "bad mode %q (want %q or %q)", er.Mode, cluster.ModeRows, cluster.ModePartial)
		return
	}
	if er.Lo < 0 || er.Base < 0 || (er.Hi != 0 && er.Hi <= er.Lo) {
		writeError(w, http.StatusBadRequest, "bad chunk range [%d,%d)+%d", er.Lo, er.Hi, er.Base)
		return
	}
	from, err := fromTable(er.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	entry, ok := s.tables[from]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown table %q", from)
		return
	}
	q, err := engine.ParseSQL(er.SQL, entry.table.Schema())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Same admission control as /query: remote shards are queries too.
	select {
	case s.slots <- struct{}{}:
	default:
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d queries in flight)", s.cfg.MaxConcurrent)
		return
	}
	defer func() { <-s.slots }()
	s.met.queries.Add(1)
	s.met.execRequests.Add(1)
	s.met.policyCount(entry.cfg.Policy)
	s.recordAccess(entry, q.RequiredColumns())

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if er.TimeoutMS > 0 {
		timeout = time.Duration(er.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	var rng *scanraw.ChunkRange
	if er.Lo > 0 || er.Hi > 0 {
		rng = &scanraw.ChunkRange{Lo: er.Lo, Hi: er.Hi}
	}
	op := s.batcherFor(entry).op
	if er.Mode == cluster.ModePartial {
		s.execPartial(ctx, w, op, q, er, rng)
		return
	}
	s.execRows(ctx, w, op, entry, q, er, rng)
}

// execStats converts a run's stats into the wire stats message.
func execStats(st scanraw.RunStats) cluster.ExecStats {
	return cluster.ExecStats{
		DeliveredCache:  st.DeliveredCache,
		DeliveredDB:     st.DeliveredDB,
		DeliveredRaw:    st.DeliveredRaw,
		Skipped:         st.SkippedChunks,
		TerminatedEarly: st.TerminatedEarly,
		ChunksSaved:     st.ChunksSaved,
		DurationMS:      float64(st.Duration.Microseconds()) / 1000,
	}
}

// execPartial runs the shard scan to completion, merges the engine
// partials, and ships the serialized merge. The scan runs before any
// response byte, so pre-stream failures still get real HTTP statuses.
func (s *Server) execPartial(ctx context.Context, w http.ResponseWriter, op *scanraw.Operator, q *engine.Query, er cluster.ExecRequest, rng *scanraw.ChunkRange) {
	ex, st, err := scanraw.ConsumeQueryRangeContext(ctx, op, q, rng)
	s.recordScan(st, 1)
	if err != nil {
		s.execFail(ctx, w, err)
		return
	}
	parts, err := ex.Finish()
	if err != nil {
		s.execFail(ctx, w, err)
		return
	}
	merged, err := engine.MergePartials(parts)
	if err != nil {
		s.execFail(ctx, w, err)
		return
	}
	payload, err := engine.EncodePartial(merged, er.Base)
	if err != nil {
		s.execFail(ctx, w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	fw := cluster.NewFrameWriter(w)
	if err := fw.Partial(payload); err != nil {
		s.accountCancelled(ctx.Err())
		return
	}
	_ = fw.Stats(execStats(st))
	_ = fw.End()
}

// execFail reports a pre-stream shard failure. A scan cut short by the
// coordinator cancelling (LIMIT satisfied, failover, timeout) is the
// distributed fast path working as designed — it is accounted as a
// cancellation, never as a failure.
func (s *Server) execFail(ctx context.Context, w http.ResponseWriter, err error) {
	if ctx.Err() != nil {
		s.accountCancelled(ctx.Err())
		s.writeCancelled(w, ctx.Err())
		return
	}
	s.met.failed.Add(1)
	writeError(w, http.StatusInternalServerError, "%v", err)
}

// execStreamer is the rows-mode consumer: it evaluates chunks on pooled
// partials (parallel consume safe) and emits one MsgRows frame per chunk
// in ascending chunk order through a reorder frontier, exactly the
// ndjsonStreamer discipline but with binary frames and global chunk IDs.
type execStreamer struct {
	mu      sync.Mutex
	q       *engine.Query
	pool    chan *engine.Partial
	fw      *cluster.FrameWriter
	flusher http.Flusher
	base    int // global chunk ID shift
	next    int // frontier: lowest local chunk ID not yet emitted
	emitted int
	ready   map[int][][]engine.Value
	skipped map[int]bool
	werr    error // first frame-write failure; stream is dead after it
}

func newExecStreamer(q *engine.Query, op *scanraw.Operator, base, startChunk int) (*execStreamer, int, error) {
	workers := op.Config().ConsumeWorkers
	if workers < 1 {
		workers = 1
	}
	st := &execStreamer{
		q:       q,
		pool:    make(chan *engine.Partial, workers),
		base:    base,
		next:    startChunk,
		ready:   make(map[int][][]engine.Value),
		skipped: make(map[int]bool),
	}
	for i := 0; i < workers; i++ {
		p, err := engine.NewPartial(q, op.Table().Schema())
		if err != nil {
			return nil, 0, err
		}
		st.pool <- p
	}
	return st, workers, nil
}

func (st *execStreamer) bind(w http.ResponseWriter) {
	st.fw = cluster.NewFrameWriter(w)
	st.flusher, _ = w.(http.Flusher)
}

func (st *execStreamer) consumeCounted(bc *scanraw.BinaryChunk) (int, error) {
	p := <-st.pool
	rows, err := p.ChunkRows(bc)
	st.pool <- p
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ready[bc.ID] = rows
	st.drainLocked()
	return len(rows), nil
}

func (st *execStreamer) markSkipped(id int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.skipped[id] {
		return
	}
	st.skipped[id] = true
	st.drainLocked()
}

func (st *execStreamer) satisfied() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.q.Limit > 0 && st.emitted >= st.q.Limit
}

func (st *execStreamer) drainLocked() {
	for {
		if st.skipped[st.next] {
			delete(st.skipped, st.next)
			st.next++
			continue
		}
		rows, ok := st.ready[st.next]
		if !ok {
			return
		}
		delete(st.ready, st.next)
		st.emitLocked(st.next, rows)
		st.next++
	}
}

// emitLocked ships one chunk's qualifying rows as a MsgRows frame,
// truncated to the query's LIMIT, and flushes so the coordinator sees
// rows (and can cancel) without waiting for the scan to end.
func (st *execStreamer) emitLocked(id int, rows [][]engine.Value) {
	if st.werr != nil || len(rows) == 0 {
		return
	}
	if st.q.Limit > 0 {
		remaining := st.q.Limit - st.emitted
		if remaining <= 0 {
			return
		}
		if len(rows) > remaining {
			rows = rows[:remaining]
		}
	}
	if err := st.fw.Rows(st.base+id, rows); err != nil {
		st.werr = err
		return
	}
	st.emitted += len(rows)
	if st.flusher != nil {
		st.flusher.Flush()
	}
}

// finish flushes out-of-order leftovers (possible only after a cancelled
// scan) in ID order.
func (st *execStreamer) finish() {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]int, 0, len(st.ready))
	for id := range st.ready {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.emitLocked(id, st.ready[id])
		delete(st.ready, id)
	}
}

// execRows runs the shard scan in rows mode: the 200 and the frame
// stream start before the scan, rows flow per chunk, and the demand
// layer stops the local scan once the shard's LIMIT share is provably
// met (the coordinator additionally cancels us when the global LIMIT
// fills from other shards first).
func (s *Server) execRows(ctx context.Context, w http.ResponseWriter, op *scanraw.Operator, entry *tableEntry, q *engine.Query, er cluster.ExecRequest, rng *scanraw.ChunkRange) {
	est, workers, err := newExecStreamer(q, op, er.Base, er.Lo)
	if err != nil {
		s.met.failed.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	est.bind(w)

	cols := q.RequiredColumns()
	if len(cols) == 0 {
		cols = []int{0}
	}
	skip := scanraw.SkipFromPredicate(q.Where)
	orig := skip
	skip = func(meta *dbstore.ChunkMeta) bool {
		if orig != nil && orig(meta) {
			est.markSkipped(meta.ID)
			return true
		}
		return false
	}
	dem := scanraw.NewDemandFrom(q, nil, er.Lo)
	req := scanraw.Request{
		Columns:         cols,
		Skip:            dem.WrapSkip(skip),
		ParallelConsume: workers,
		Range:           rng,
		Satisfied:       dem.SatisfiedFn(),
		Deliver: func(bc *scanraw.BinaryChunk) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if dem.IsSatisfied() {
				return nil
			}
			matched, err := est.consumeCounted(bc)
			if err != nil {
				return err
			}
			dem.RecordChunk(bc.ID, matched)
			return nil
		},
	}
	st, err := op.RunContext(ctx, req)
	s.recordScan(st, 1)
	if err != nil {
		if ctx.Err() != nil {
			// Coordinator cancelled mid-stream (global LIMIT satisfied or
			// failover): expected shutdown, not a failure. The stream is
			// torn; the coordinator already stopped reading it.
			s.accountCancelled(ctx.Err())
			return
		}
		s.met.failed.Add(1)
		_ = est.fw.Error(err.Error())
		return
	}
	est.finish()
	_ = est.fw.Stats(execStats(st))
	_ = est.fw.End()
}
