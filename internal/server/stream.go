package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"scanraw/internal/engine"
	"scanraw/internal/scanraw"
	"scanraw/internal/schema"
)

// ndjsonStreamer consumes chunks for a non-aggregate, ORDER-BY-free query
// and writes qualifying rows to the client as they are produced, instead of
// materializing the result. Because chunks arrive in whatever order the
// scan (and, with parallel consume, the fan-out workers) produces them, a
// reorder buffer holds finished chunks until the frontier — the next chunk
// ID to emit — catches up, so the emitted row order is always ascending
// (chunk ID, row ordinal): identical to the materialized path's canonical
// order no matter how delivery was parallelized.
//
// Chunks the scan skips (statistics-based elimination) never arrive, so
// skip decisions are fed in via markSkipped to advance the frontier past
// them.
type ndjsonStreamer struct {
	q    *engine.Query
	pool chan *engine.Partial // per-worker evaluation scratch (ChunkRows)

	mu      sync.Mutex
	enc     *json.Encoder
	flusher http.Flusher
	next    int // frontier: lowest chunk ID not yet emitted
	ready   map[int][][]engine.Value
	skipped map[int]bool
	emitted int
	closed  bool
}

// newNDJSONStreamer validates the query (it must be streamable: no
// aggregation, no ORDER BY) and builds a streamer with one evaluation
// partial per consume worker.
func newNDJSONStreamer(q *engine.Query, sch *schema.Schema, workers int) (*ndjsonStreamer, error) {
	if q.IsAggregate() || len(q.OrderBy) > 0 {
		return nil, fmt.Errorf("server: query is not streamable")
	}
	if workers < 1 {
		workers = 1
	}
	st := &ndjsonStreamer{
		q:       q,
		pool:    make(chan *engine.Partial, workers),
		ready:   make(map[int][][]engine.Value),
		skipped: make(map[int]bool),
	}
	for i := 0; i < workers; i++ {
		p, err := engine.NewPartial(q, sch)
		if err != nil {
			return nil, err
		}
		st.pool <- p
	}
	return st, nil
}

// start binds the response writer and emits the columns header. Must be
// called before the scan is submitted.
func (st *ndjsonStreamer) start(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	st.enc = json.NewEncoder(w)
	st.flusher, _ = w.(http.Flusher)
	_ = st.enc.Encode(map[string]any{"columns": st.columns()})
}

func (st *ndjsonStreamer) columns() []string {
	cols := make([]string, len(st.q.Items))
	for i, it := range st.q.Items {
		cols[i] = it.Name()
	}
	return cols
}

// Consume implements the executor surface the coalescer drives. Safe for
// concurrent calls (parallel consume): evaluation runs on a pooled partial
// outside the lock; buffering and emission serialize on it.
func (st *ndjsonStreamer) Consume(bc *scanraw.BinaryChunk) error {
	p := <-st.pool
	rows, err := p.ChunkRows(bc)
	st.pool <- p
	if err != nil {
		return err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ready[bc.ID] = rows
	st.drainLocked()
	return nil
}

// markSkipped records a chunk the scan eliminated so the frontier can pass
// it. Idempotent — the shared-scan path consults Skip more than once per
// chunk.
func (st *ndjsonStreamer) markSkipped(id int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.skipped[id] {
		return
	}
	st.skipped[id] = true
	st.drainLocked()
}

// drainLocked advances the frontier, emitting every buffered chunk that
// became contiguous.
func (st *ndjsonStreamer) drainLocked() {
	for {
		if st.skipped[st.next] {
			delete(st.skipped, st.next)
			st.next++
			continue
		}
		rows, ok := st.ready[st.next]
		if !ok {
			return
		}
		delete(st.ready, st.next)
		st.emitLocked(rows)
		st.next++
	}
}

func (st *ndjsonStreamer) emitLocked(rows [][]engine.Value) {
	if st.closed || st.enc == nil {
		return
	}
	for _, row := range rows {
		if st.q.Limit > 0 && st.emitted >= st.q.Limit {
			return
		}
		_ = st.enc.Encode(jsonRow(row))
		st.emitted++
		// Flush periodically so large results stream instead of buffering.
		if st.flusher != nil && st.emitted%1024 == 0 {
			st.flusher.Flush()
		}
	}
}

// Result completes the executor surface: rows already went to the client,
// so only the column header remains. Out-of-order leftovers (possible only
// when a member was cancelled mid-scan) are flushed in ID order first.
func (st *ndjsonStreamer) Result() (*engine.Result, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]int, 0, len(st.ready))
	for id := range st.ready {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.emitLocked(st.ready[id])
		delete(st.ready, id)
	}
	return &engine.Result{Cols: st.columns()}, nil
}

// finishOK writes the stats trailer.
func (st *ndjsonStreamer) finishOK(stats queryStats) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closed = true
	if st.enc != nil {
		_ = st.enc.Encode(map[string]any{"stats": stats})
	}
}

// fail terminates the stream with an error line. The HTTP status is long
// gone — in-band errors are the streaming contract.
func (st *ndjsonStreamer) fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closed = true
	if st.enc != nil {
		_ = st.enc.Encode(map[string]any{"error": err.Error()})
	}
}
