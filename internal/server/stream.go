package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"scanraw/internal/engine"
	"scanraw/internal/scanraw"
	"scanraw/internal/schema"
)

// rowStreamer is the surface the serving path drives for NDJSON streaming
// queries: the executor contract plus the stream lifecycle and the signals
// the coalescer consults (skip decisions for the reorder frontier,
// satisfaction for demand-driven termination).
type rowStreamer interface {
	executor
	start(w http.ResponseWriter)
	finishOK(stats queryStats)
	fail(err error)
	markSkipped(id int)
	satisfied() bool
}

// streamBase is the encoder state shared by the NDJSON streamers: it owns
// the response writer and serializes row emission.
type streamBase struct {
	mu      sync.Mutex
	enc     *json.Encoder
	flusher http.Flusher
	emitted int
	closed  bool
}

// bind attaches the response writer and emits the columns header. Must
// happen before the scan can push rows.
func (sb *streamBase) bind(w http.ResponseWriter, cols []string) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	sb.enc = json.NewEncoder(w)
	sb.flusher, _ = w.(http.Flusher)
	_ = sb.enc.Encode(map[string]any{"columns": cols})
}

func (sb *streamBase) emitRowLocked(row []engine.Value) {
	if sb.closed || sb.enc == nil {
		return
	}
	_ = sb.enc.Encode(jsonRow(row))
	sb.emitted++
	// Flush periodically so large results stream instead of buffering.
	if sb.flusher != nil && sb.emitted%1024 == 0 {
		sb.flusher.Flush()
	}
}

// finishOK writes the stats trailer.
func (sb *streamBase) finishOK(stats queryStats) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.closed = true
	if sb.enc != nil {
		_ = sb.enc.Encode(map[string]any{"stats": stats})
	}
}

// fail terminates the stream with an error line. The HTTP status is long
// gone — in-band errors are the streaming contract.
func (sb *streamBase) fail(err error) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.closed = true
	if sb.enc != nil {
		_ = sb.enc.Encode(map[string]any{"error": err.Error()})
	}
}

// ndjsonStreamer consumes chunks for a non-aggregate, ORDER-BY-free query
// and writes qualifying rows to the client as they are produced, instead of
// materializing the result. Because chunks arrive in whatever order the
// scan (and, with parallel consume, the fan-out workers) produces them, a
// reorder buffer holds finished chunks until the frontier — the next chunk
// ID to emit — catches up, so the emitted row order is always ascending
// (chunk ID, row ordinal): identical to the materialized path's canonical
// order no matter how delivery was parallelized.
//
// Chunks the scan skips (statistics-based elimination) never arrive, so
// skip decisions are fed in via markSkipped to advance the frontier past
// them.
type ndjsonStreamer struct {
	streamBase
	q    *engine.Query
	pool chan *engine.Partial // per-worker evaluation scratch (ChunkRows)

	next    int // frontier: lowest chunk ID not yet emitted
	ready   map[int][][]engine.Value
	skipped map[int]bool
}

// newNDJSONStreamer validates the query (it must be streamable: no
// aggregation, no ORDER BY) and builds a streamer with one evaluation
// partial per consume worker.
func newNDJSONStreamer(q *engine.Query, sch *schema.Schema, workers int) (*ndjsonStreamer, error) {
	if q.IsAggregate() || len(q.OrderBy) > 0 {
		return nil, fmt.Errorf("server: query is not streamable")
	}
	if workers < 1 {
		workers = 1
	}
	st := &ndjsonStreamer{
		q:       q,
		pool:    make(chan *engine.Partial, workers),
		ready:   make(map[int][][]engine.Value),
		skipped: make(map[int]bool),
	}
	for i := 0; i < workers; i++ {
		p, err := engine.NewPartial(q, sch)
		if err != nil {
			return nil, err
		}
		st.pool <- p
	}
	return st, nil
}

// start binds the response writer and emits the columns header. Must be
// called before the scan is submitted.
func (st *ndjsonStreamer) start(w http.ResponseWriter) { st.bind(w, st.columns()) }

func (st *ndjsonStreamer) columns() []string {
	cols := make([]string, len(st.q.Items))
	for i, it := range st.q.Items {
		cols[i] = it.Name()
	}
	return cols
}

// Consume implements the executor surface the coalescer drives. Safe for
// concurrent calls (parallel consume): evaluation runs on a pooled partial
// outside the lock; buffering and emission serialize on it.
func (st *ndjsonStreamer) Consume(bc *scanraw.BinaryChunk) error {
	_, err := st.ConsumeCounted(bc)
	return err
}

// ConsumeCounted is Consume reporting how many rows qualified — the signal
// demand-driven termination folds into its LIMIT frontier.
func (st *ndjsonStreamer) ConsumeCounted(bc *scanraw.BinaryChunk) (int, error) {
	p := <-st.pool
	rows, err := p.ChunkRows(bc)
	st.pool <- p
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ready[bc.ID] = rows
	st.drainLocked()
	return len(rows), nil
}

// markSkipped records a chunk the scan eliminated so the frontier can pass
// it. Idempotent — the shared-scan path consults Skip more than once per
// chunk.
func (st *ndjsonStreamer) markSkipped(id int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.skipped[id] {
		return
	}
	st.skipped[id] = true
	st.drainLocked()
}

// satisfied reports whether the stream's LIMIT is already met: every
// further chunk is surplus and the scan serving this query may stop.
func (st *ndjsonStreamer) satisfied() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.q.Limit > 0 && st.emitted >= st.q.Limit
}

// drainLocked advances the frontier, emitting every buffered chunk that
// became contiguous.
func (st *ndjsonStreamer) drainLocked() {
	for {
		if st.skipped[st.next] {
			delete(st.skipped, st.next)
			st.next++
			continue
		}
		rows, ok := st.ready[st.next]
		if !ok {
			return
		}
		delete(st.ready, st.next)
		st.emitLocked(rows)
		st.next++
	}
}

func (st *ndjsonStreamer) emitLocked(rows [][]engine.Value) {
	for _, row := range rows {
		if st.q.Limit > 0 && st.emitted >= st.q.Limit {
			return
		}
		st.emitRowLocked(row)
	}
}

// Result completes the executor surface: rows already went to the client,
// so only the column header remains. Out-of-order leftovers (possible only
// when a member was cancelled mid-scan) are flushed in ID order first.
func (st *ndjsonStreamer) Result() (*engine.Result, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]int, 0, len(st.ready))
	for id := range st.ready {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st.emitLocked(st.ready[id])
		delete(st.ready, id)
	}
	return &engine.Result{Cols: st.columns()}, nil
}

// orderedStreamer serves ORDER BY (optionally LIMIT) queries as NDJSON
// without the full-materialization stall: chunks fold into a parallel
// executor's partials during the scan, and at end-of-scan the per-partial
// runs are sorted once and merged on emit through a loser tree
// (engine.RunMerger) — rows reach the client as the merge produces them
// instead of after a monolithic sort of the whole result. The executor's
// live top-k bound additionally gives ORDER BY ... LIMIT scans a chunk
// pruning rule (Bound, consumed by scanraw's demand layer).
type orderedStreamer struct {
	streamBase
	q  *engine.Query
	pe *engine.ParallelExecutor
}

// newOrderedStreamer validates the query (non-aggregate, with ORDER BY) and
// builds the merge-on-emit streamer over a parallel executor.
func newOrderedStreamer(q *engine.Query, sch *schema.Schema, workers int) (*orderedStreamer, error) {
	if q.IsAggregate() || len(q.OrderBy) == 0 {
		return nil, fmt.Errorf("server: query is not order-streamable")
	}
	if workers < 1 {
		workers = 1
	}
	pe, err := engine.NewParallelExecutor(q, sch, workers)
	if err != nil {
		return nil, err
	}
	return &orderedStreamer{q: q, pe: pe}, nil
}

func (st *orderedStreamer) start(w http.ResponseWriter) { st.bind(w, st.columns()) }

func (st *orderedStreamer) columns() []string {
	cols := make([]string, len(st.q.Items))
	for i, it := range st.q.Items {
		cols[i] = it.Name()
	}
	return cols
}

func (st *orderedStreamer) Consume(bc *scanraw.BinaryChunk) error { return st.pe.Consume(bc) }

func (st *orderedStreamer) ConsumeCounted(bc *scanraw.BinaryChunk) (int, error) {
	return st.pe.ConsumeCounted(bc)
}

// Bound exposes the executor's top-k cutoff for chunk pruning.
func (st *orderedStreamer) Bound() ([]engine.Value, bool) { return st.pe.Bound() }

// markSkipped is a no-op: the merge orders rows itself, no reorder frontier.
func (st *orderedStreamer) markSkipped(int) {}

// satisfied is always false: an ORDER BY query's result is final only at
// end-of-scan (bound pruning, not whole-scan termination, is its demand
// lever).
func (st *orderedStreamer) satisfied() bool { return false }

// Result runs the merge-on-emit phase: sort each partial's retained rows,
// stream the k-way merge to the client, and return the bare column header
// (rows are already on the wire).
func (st *orderedStreamer) Result() (*engine.Result, error) {
	parts, err := st.pe.Finish()
	if err != nil {
		return nil, err
	}
	m, err := engine.NewRunMerger(st.q, parts)
	if err != nil {
		return nil, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	for {
		row, ok := m.Next()
		if !ok {
			break
		}
		st.emitRowLocked(row)
	}
	return &engine.Result{Cols: st.columns()}, nil
}
