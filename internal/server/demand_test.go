package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"scanraw/internal/scanraw"
)

// TestOrderedStreaming: ORDER BY queries stream over NDJSON through the
// merge-on-emit path; the streamed rows must match the materialized result
// exactly, including order and LIMIT.
func TestOrderedStreaming(t *testing.T) {
	env := newServerEnv(t, 1024, nil, Config{},
		scanraw.Config{Workers: 2, CacheChunks: 8, ConsumeWorkers: 4})
	queries := []string{
		"SELECT c0, c1 FROM data ORDER BY c0 DESC, c1 LIMIT 25",
		"SELECT c0, c1 FROM data WHERE c2 < 300 ORDER BY c0",
		"SELECT c0, SUM(c1) AS s FROM data GROUP BY c0 ORDER BY s DESC LIMIT 5",
	}
	for _, sql := range queries {
		_, out := postQuery(t, env, fmt.Sprintf(`{"sql": %q}`, sql))
		want, _ := json.Marshal(out["rows"])

		resp, err := http.Post(env.ts.URL+"/query?stream=ndjson", "application/json",
			strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sql)))
		if err != nil {
			t.Fatal(err)
		}
		rows, objs := readNDJSON(t, resp.Body)
		resp.Body.Close()
		if len(objs) != 2 {
			t.Fatalf("%s: want header + trailer, got %d objects: %v", sql, len(objs), objs)
		}
		if _, ok := objs[0]["columns"]; !ok {
			t.Errorf("%s: first line is not a columns header: %v", sql, objs[0])
		}
		if _, ok := objs[1]["stats"]; !ok {
			t.Errorf("%s: last line is not a stats trailer: %v", sql, objs[1])
		}
		got, _ := json.Marshal(rows)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: streamed rows differ from materialized\nstreamed:     %.300s\nmaterialized: %.300s",
				sql, got, want)
		}
		if len(rows) == 0 {
			t.Errorf("%s: streamed no rows", sql)
		}
	}
}

// TestTerminationMetrics: a LIMIT query served over many chunks terminates
// its scan early, and the /metrics counters record it.
func TestTerminationMetrics(t *testing.T) {
	env := newServerEnv(t, 2048, nil, Config{},
		scanraw.Config{Workers: 2, CacheChunks: 8}) // 32 chunks of 64 lines
	status, out := postQuery(t, env, `{"sql": "SELECT c0, c1 FROM data LIMIT 5"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, out)
	}
	if got := len(out["rows"].([]any)); got != 5 {
		t.Fatalf("rows = %d, want 5", got)
	}
	stats := out["stats"].(map[string]any)
	if te, _ := stats["terminated_early"].(bool); !te {
		t.Errorf("stats.terminated_early = %v, want true (%v)", stats["terminated_early"], stats)
	}
	if cs, _ := stats["chunks_saved"].(float64); cs < 1 {
		t.Errorf("stats.chunks_saved = %v, want >= 1", stats["chunks_saved"])
	}

	snap := env.srv.MetricsSnapshot()
	if snap.ScansTerminatedEarly < 1 {
		t.Errorf("scans_terminated_early = %d, want >= 1", snap.ScansTerminatedEarly)
	}
	if snap.ChunksSavedByTermination < 1 {
		t.Errorf("chunks_saved_by_termination = %d, want >= 1", snap.ChunksSavedByTermination)
	}
	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"scans_terminated_early", "chunks_saved_by_termination"} {
		if v, ok := m[key].(float64); !ok || v < 1 {
			t.Errorf("/metrics %s = %v, want >= 1", key, m[key])
		}
	}
}

// TestCoalescerDemandAdmission is the regression test for the coalescing
// window guard: an unbounded query must not join a window whose members all
// carry termination signals (it would force their shared scan to
// end-of-file), so it dispatches alone — while bounded queries still
// coalesce with each other.
func TestCoalescerDemandAdmission(t *testing.T) {
	env := newServerEnv(t, 1024, nil,
		Config{MaxConcurrent: 8, CoalesceWindow: 400 * time.Millisecond},
		scanraw.Config{Workers: 2, CacheChunks: 8})

	// A bounded query opens a coalescing window and sits in it.
	type result struct {
		batch int
		err   error
	}
	limitDone := make(chan result, 1)
	go func() {
		resp, err := http.Post(env.ts.URL+"/query", "application/json",
			strings.NewReader(`{"sql": "SELECT c0 FROM data LIMIT 5"}`))
		if err != nil {
			limitDone <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			limitDone <- result{err: err}
			return
		}
		if resp.StatusCode != http.StatusOK {
			limitDone <- result{err: fmt.Errorf("status %d: %v", resp.StatusCode, out)}
			return
		}
		limitDone <- result{batch: int(out["stats"].(map[string]any)["batch_size"].(float64))}
	}()
	time.Sleep(100 * time.Millisecond) // let the window open

	// The unbounded aggregate arrives mid-window: it must execute alone
	// instead of joining (and un-terminating) the bounded batch.
	start := time.Now()
	status, out := postQuery(t, env, fmt.Sprintf(`{"sql": %q}`, sumSQL))
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("aggregate status = %d: %v", status, out)
	}
	if got := firstValue(t, out); got != env.want {
		t.Errorf("aggregate sum = %d, want %d", got, env.want)
	}
	if bs := int(out["stats"].(map[string]any)["batch_size"].(float64)); bs != 1 {
		t.Errorf("aggregate batch_size = %d, want 1 (must not join the bounded window)", bs)
	}
	if elapsed >= 300*time.Millisecond {
		t.Errorf("aggregate waited %v, should have dispatched without the window", elapsed)
	}

	r := <-limitDone
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.batch != 1 {
		t.Errorf("bounded query batch_size = %d, want 1", r.batch)
	}
	snap := env.srv.MetricsSnapshot()
	if snap.PhysicalScans != 2 {
		t.Errorf("physical_scans = %d, want 2 (no coalescing across the demand boundary)", snap.PhysicalScans)
	}

	// Control: two bounded queries in one window still share a scan, and the
	// all-bounded shared scan terminates early.
	results := make(chan result, 2)
	for _, sql := range []string{"SELECT c0 FROM data LIMIT 5", "SELECT c1 FROM data LIMIT 7"} {
		go func(sql string) {
			resp, err := http.Post(env.ts.URL+"/query", "application/json",
				strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sql)))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				results <- result{err: err}
				return
			}
			if resp.StatusCode != http.StatusOK {
				results <- result{err: fmt.Errorf("status %d: %v", resp.StatusCode, out)}
				return
			}
			results <- result{batch: int(out["stats"].(map[string]any)["batch_size"].(float64))}
		}(sql)
	}
	for i := 0; i < 2; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.batch != 2 {
			t.Errorf("bounded pair batch_size = %d, want 2 (bounded queries still coalesce)", r.batch)
		}
	}
}
