package server

import (
	"testing"

	"scanraw/internal/testutil"
)

// TestMain fails the package when a test leaves server goroutines — scan
// workers, shared-scan followers, admission waiters — running after it
// returns. See internal/testutil.
func TestMain(m *testing.M) { testutil.Main(m) }
