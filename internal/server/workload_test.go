package server

import (
	"math"
	"net/http"
	"testing"

	"scanraw/internal/dbstore"
	"scanraw/internal/gen"
	"scanraw/internal/scanraw"
	"scanraw/internal/vdisk"
)

// TestWorkloadTrackingAndMetrics drives a skewed query stream and checks
// the serving layer's workload plumbing end to end: the tracker weights
// the hot column above the cold one, /metrics exposes the profile and the
// partial-hit delivery counter, and after enough accesses the profile is
// persisted into the catalog for the next process to seed from.
func TestWorkloadTrackingAndMetrics(t *testing.T) {
	env := newServerEnv(t, 512, nil, Config{}, scanraw.Config{
		Workers: 2, CacheChunks: 8, Policy: scanraw.Speculative, Safeguard: true,
		CollectStats: true, Speculation: scanraw.SpecPayoff,
	})
	// Column 1 is hot: 2 * workloadFlushEvery accesses guarantee at least
	// one persistence point; column 3 gets a single access.
	for i := 0; i < 2*workloadFlushEvery; i++ {
		if status, out := postQuery(t, env, `{"sql": "SELECT SUM(c1) FROM data"}`); status != http.StatusOK {
			t.Fatalf("query %d: status %d: %v", i, status, out)
		}
	}
	if status, _ := postQuery(t, env, `{"sql": "SELECT SUM(c3) FROM data"}`); status != http.StatusOK {
		t.Fatal("cold-column query failed")
	}

	snap := env.srv.MetricsSnapshot()
	w, ok := snap.WorkloadWeights["data"]
	if !ok || len(w) != 4 {
		t.Fatalf("workload_weights missing or wrong width: %v", snap.WorkloadWeights)
	}
	if w[1] <= w[3] || w[1] <= w[0] {
		t.Errorf("hot column not dominant: weights = %v", w)
	}
	// Repeat queries over an already-loaded narrow column mean later scans
	// were served from cache/db/partial, not re-converted; the hot queries
	// after the first must not all be raw.
	total := snap.ChunksDelivered.Cache + snap.ChunksDelivered.DB + snap.ChunksDelivered.Partial
	if total == 0 {
		t.Errorf("no cached/db/partial deliveries across repeat queries: %+v", snap.ChunksDelivered)
	}

	// The decayed profile crossed a flush point, so the catalog has it.
	persisted := env.srv.store.Workload("data")
	if len(persisted) != 4 {
		t.Fatalf("persisted workload = %v, want width 4", persisted)
	}
	if persisted[1] <= persisted[0] {
		t.Errorf("persisted profile lost the skew: %v", persisted)
	}
}

// TestWorkloadWarmStartSeedsTracker: a profile already in the catalog (as
// after a restart replaying RecWorkload) must seed the table's tracker at
// AddTable time, so payoff speculation is warm from the first query.
func TestWorkloadWarmStartSeedsTracker(t *testing.T) {
	d := vdisk.Unlimited()
	spec := gen.CSVSpec{Rows: 64, Cols: 4, Seed: 1, MaxValue: 100}
	gen.Preload(d, "raw/data.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("data", spec.Schema(), "raw/data.csv")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.SetWorkload("data", []float64{0, 9, 0, 1}); err != nil {
		t.Fatal(err)
	}
	s := New(store, Config{})
	if err := s.AddTable(table, scanraw.Config{Workers: 1, ChunkLines: 32, CacheChunks: 4}); err != nil {
		t.Fatal(err)
	}
	s.mu.RLock()
	e := s.tables["data"]
	s.mu.RUnlock()
	w := e.tracker.Weights()
	if len(w) != 4 || w[1] <= w[3] || w[3] <= w[0] {
		t.Fatalf("tracker not seeded from catalog: %v", w)
	}
	// The operator config must carry the weights source — payoff
	// speculation reads it every quantum.
	if e.cfg.ColumnWeights == nil {
		t.Fatal("entry config has no ColumnWeights source")
	}
	got := e.cfg.ColumnWeights()
	if len(got) != len(w) {
		t.Fatalf("config weights = %v, tracker = %v", got, w)
	}
	for i := range got {
		// Successive reads decay independently; only gross drift is a bug.
		if math.Abs(got[i]-w[i]) > 0.01 {
			t.Errorf("config weights = %v, tracker = %v", got, w)
			break
		}
	}
}
