package server

import (
	"bufio"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"scanraw/internal/scanraw"
)

// newFusedPair builds two identical served tables, one converting with
// fused kernels (the default) and one forced onto the two-stage path.
func newFusedPair(t *testing.T, workers int) (fused, twoStage *serverEnv) {
	t.Helper()
	off := scanraw.Config{Workers: workers, CacheChunks: 8, FusedKernels: scanraw.FusedOff}
	on := scanraw.Config{Workers: workers, CacheChunks: 8}
	twoStage = newServerEnv(t, 512, nil, Config{}, off)
	fused = newServerEnv(t, 512, nil, Config{}, on)
	return fused, twoStage
}

// TestFusedServingMatchesJSON: the JSON /query responses must carry
// identical columns and rows regardless of the conversion path. Stats are
// excluded — they report wall-clock timings.
func TestFusedServingMatchesJSON(t *testing.T) {
	queries := []string{
		sumSQL,
		"SELECT COUNT(*), MIN(c1), MAX(c2) FROM data WHERE c0 < 500",
		"SELECT c0, SUM(c1) FROM data WHERE c3 > 100 GROUP BY c0 ORDER BY c0 LIMIT 5",
	}
	for _, workers := range []int{0, 4} {
		fused, twoStage := newFusedPair(t, workers)
		for _, sql := range queries {
			body := fmt.Sprintf(`{"sql": %q}`, sql)
			stOff, outOff := postQuery(t, twoStage, body)
			stOn, outOn := postQuery(t, fused, body)
			if stOff != http.StatusOK || stOn != http.StatusOK {
				t.Fatalf("workers=%d %s: status %d vs %d (%v / %v)", workers, sql, stOff, stOn, outOff, outOn)
			}
			if !reflect.DeepEqual(outOff["columns"], outOn["columns"]) {
				t.Errorf("workers=%d %s: columns %v vs %v", workers, sql, outOff["columns"], outOn["columns"])
			}
			if !reflect.DeepEqual(outOff["rows"], outOn["rows"]) {
				t.Errorf("workers=%d %s: rows differ:\n two-stage: %v\n fused:     %v", workers, sql, outOff["rows"], outOn["rows"])
			}
		}
	}
}

// ndjsonLines POSTs a streaming query and returns every emitted line
// except the stats trailer (wall-clock timings differ run to run).
func ndjsonLines(t *testing.T, env *serverEnv, sql string) []string {
	t.Helper()
	resp, err := http.Post(env.ts.URL+"/query?stream=ndjson", "application/json",
		strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sql)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, `{"stats"`) {
			continue
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestFusedServingMatchesNDJSON compares the streamed byte output of both
// conversion paths line for line. ORDER BY pins the emission order so the
// comparison is deterministic under parallel conversion.
func TestFusedServingMatchesNDJSON(t *testing.T) {
	fused, twoStage := newFusedPair(t, 4)
	sql := "SELECT c0, c1 FROM data WHERE c2 < 300 ORDER BY c0, c1 LIMIT 50"
	want := ndjsonLines(t, twoStage, sql)
	got := ndjsonLines(t, fused, sql)
	if len(want) != len(got) {
		t.Fatalf("line count %d vs %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("line %d:\n two-stage: %s\n fused:     %s", i, want[i], got[i])
		}
	}
	if len(want) < 2 {
		t.Fatalf("stream too short (%d lines) to prove anything", len(want))
	}
}
