// Package server exposes the SCANRAW engine as a long-running concurrent
// query service — the operator-inside-a-running-database deployment the
// paper assumes (§4, Fig. 8), turned into a daemon that serves a stream
// of queries from many clients at once.
//
// The serving path is built around two mechanisms:
//
//   - Admission control: a bounded slot semaphore caps the number of
//     in-flight queries. When every slot is taken, new queries are shed
//     immediately with 429 Too Many Requests instead of queueing without
//     bound and collapsing the service.
//   - Scan coalescing: admitted queries against the same raw file are
//     batched over a short coalescing window and dispatched through the
//     operator's shared-scan path (RunShared), so one physical scan —
//     one read/tokenize/parse of every chunk — serves N clients.
//
// Per-query contexts (client disconnects, timeouts) propagate into the
// operator pipeline: a query whose client has gone away stops receiving
// chunks, and once every member of a shared scan is gone the scan itself
// is cancelled and the disk released.
//
// Endpoints: POST /query (JSON result, or NDJSON rows with ?stream=ndjson),
// GET /metrics (live utilization + serving counters), GET /tables (catalog
// and loading progress).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/metrics"
	"scanraw/internal/ola"
	"scanraw/internal/scanraw"
	"scanraw/internal/schema"
	"scanraw/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// MaxConcurrent is the number of admission slots — queries in flight
	// at once, across all tables. Arrivals beyond it get 429. Default 32.
	MaxConcurrent int
	// CoalesceWindow is how long the first query against a file waits for
	// companions before its scan is dispatched. Concurrent queries landing
	// within the window share one physical scan. Default 2ms; negative
	// disables coalescing (every query scans alone).
	CoalesceWindow time.Duration
	// MaxBatch caps how many queries one shared scan serves; a full batch
	// dispatches immediately without waiting out the window. Default 64.
	MaxBatch int
	// DefaultTimeout bounds queries that do not carry their own timeout.
	// Zero means no server-imposed limit.
	DefaultTimeout time.Duration
	// OLAError, when positive, makes online aggregation the default for
	// eligible aggregate queries: they run as sampled scans that stop once
	// the relative confidence bound reaches this tolerance. Individual
	// queries override it with ?error= (0 forces an exact sampled scan).
	OLAError float64
	// OLAConfidence is the confidence level of OLA bounds when a query
	// does not pass ?confidence=. Zero means 0.95.
	OLAConfidence float64
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 32
	}
	switch {
	case c.CoalesceWindow < 0:
		c.CoalesceWindow = 0
	case c.CoalesceWindow == 0:
		c.CoalesceWindow = 2 * time.Millisecond
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// tableEntry is one servable table: its catalog entry, the operator
// configuration new operators for it are created with, and the workload
// tracker that turns the query stream into per-column access weights for
// payoff-ranked speculation.
type tableEntry struct {
	table   *dbstore.Table
	cfg     scanraw.Config
	tracker *workload.Tracker
	// accesses counts tracker recordings; every workloadFlushEvery-th one
	// persists the decayed weights through the catalog journal so a restart
	// resumes speculation with a warm profile.
	accesses atomic.Int64
}

// workloadFlushEvery is how many recorded accesses pass between workload
// persistence points. Flushing every query would put a journal append on
// the serving hot path; one in sixteen keeps the persisted profile close
// to live while amortizing the write.
const workloadFlushEvery = 16

// Server is the query-serving subsystem: it owns an operator registry
// over a store and serves SQL against registered tables.
type Server struct {
	cfg   Config
	store *dbstore.Store
	reg   *scanraw.Registry
	slots chan struct{}
	meter *metrics.Meter
	start time.Time

	mu       sync.RWMutex
	tables   map[string]*tableEntry
	batchers map[string]*batcher

	// draining flips at Drain entry; /healthz reports it (503) so a
	// coordinator stops routing new shards here, and /exec sheds
	// immediately instead of racing the slot takeover.
	draining atomic.Bool

	met counters
}

// New creates a server over a store. Tables become servable via AddTable.
func New(store *dbstore.Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		store:    store,
		reg:      scanraw.NewRegistry(store),
		slots:    make(chan struct{}, cfg.MaxConcurrent),
		start:    time.Now(),
		tables:   make(map[string]*tableEntry),
		batchers: make(map[string]*batcher),
	}
	s.meter = metrics.NewMeter(store.Disk(), s.workerBusyTotal)
	return s
}

// Registry returns the server's operator registry (tests inspect operator
// state through it).
func (s *Server) Registry() *scanraw.Registry { return s.reg }

// Drain quiesces the server for shutdown: it claims every admission slot
// (blocking until in-flight queries finish, while new arrivals are shed with
// 429), waits out each operator's background safeguard flush so speculative
// writes complete, and compacts the catalog journal into a checkpoint. The
// slots are never released — a drained server stays drained. ctx bounds the
// wait; on expiry the checkpoint still runs so whatever has finished is
// compacted, and the context error is returned.
func (s *Server) Drain(ctx context.Context) error {
	// Flip readiness first: new /exec shards and health probes see the
	// drain before the slot takeover starts, so a coordinator routes
	// around this worker instead of racing its shutdown.
	s.draining.Store(true)
	var ctxErr error
slots:
	for i := 0; i < s.cfg.MaxConcurrent; i++ {
		select {
		case s.slots <- struct{}{}:
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break slots
		}
	}
	s.mu.RLock()
	entries := make([]*tableEntry, 0, len(s.tables))
	for _, e := range s.tables {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	for _, e := range entries {
		if op, ok := s.reg.Lookup(e.table.RawFile()); ok {
			op.WaitIdle()
		}
		// Flush the final workload profile so the checkpoint below folds it
		// in — the next process starts speculating where this one left off.
		if e.accesses.Load() > 0 {
			_ = s.store.SetWorkload(e.table.Name(), e.tracker.Weights())
		}
	}
	if err := s.store.Checkpoint(); err != nil {
		return err
	}
	return ctxErr
}

// AddTable registers a table for serving with the given operator
// configuration. The server attaches a workload tracker and wires its
// weights into the operator config here — the operator is created once, on
// the first query, so the config must be final before it is stored.
func (s *Server) AddTable(t *dbstore.Table, opCfg scanraw.Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tables[t.Name()]; dup {
		return fmt.Errorf("server: table %q already registered", t.Name())
	}
	tr := workload.New(t.Schema().NumColumns(), 0)
	if w := s.store.Workload(t.Name()); w != nil {
		// Warm start: resume from the profile persisted before the last
		// shutdown instead of falling back to scan-order speculation.
		tr.Seed(w)
	}
	opCfg.ColumnWeights = tr.Weights
	s.tables[t.Name()] = &tableEntry{table: t, cfg: opCfg, tracker: tr}
	return nil
}

// recordAccess folds one query's required columns into the table's workload
// profile, periodically persisting the decayed weights through the journal.
func (s *Server) recordAccess(e *tableEntry, cols []int) {
	e.tracker.Record(cols)
	if e.accesses.Add(1)%workloadFlushEvery == 0 {
		// Persistence is best-effort: a failed journal append costs a warm
		// profile on the next restart, never the query.
		_ = s.store.SetWorkload(e.table.Name(), e.tracker.Weights())
	}
}

// workerBusyTotal sums cumulative worker-busy time across the live
// operators of every registered table — the CPU source for the meter.
func (s *Server) workerBusyTotal() time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total time.Duration
	for _, e := range s.tables {
		if op, ok := s.reg.Lookup(e.table.RawFile()); ok {
			total += op.CPU().Total()
		}
	}
	return total
}

// batcherFor returns the coalescing batcher for a table, creating it on
// first use (which also creates the table's operator).
func (s *Server) batcherFor(e *tableEntry) *batcher {
	s.mu.RLock()
	b, ok := s.batchers[e.table.Name()]
	s.mu.RUnlock()
	if ok {
		return b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.batchers[e.table.Name()]; ok {
		return b
	}
	b = &batcher{
		srv:      s,
		op:       s.reg.Operator(e.table, e.cfg),
		window:   s.cfg.CoalesceWindow,
		maxBatch: s.cfg.MaxBatch,
	}
	s.batchers[e.table.Name()] = b
	return b
}

// Handler returns the HTTP handler serving /query, /metrics and /tables.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /exec", s.handleExec)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /tables", s.handleTables)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleHealthz is the liveness/readiness probe: 200 while serving, 503
// once draining — the signal a coordinator uses to skip this worker.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// queryRequest is the POST /query body.
type queryRequest struct {
	SQL string `json:"sql"`
	// TimeoutMS bounds this query; zero falls back to the server default.
	TimeoutMS int64 `json:"timeout_ms"`
}

// queryStats is the per-query serving report attached to every result.
type queryStats struct {
	DurationMS      float64 `json:"duration_ms"`
	BatchSize       int     `json:"batch_size"` // queries served by the same physical scan
	ScanChunksCache int     `json:"scan_chunks_cache"`
	ScanChunksDB    int     `json:"scan_chunks_db"`
	ScanChunksRaw   int     `json:"scan_chunks_raw"`
	// ScanChunksPartial counts partial-width hits: chunks served by merging
	// already-loaded column groups with a narrow conversion of the rest.
	ScanChunksPartial int    `json:"scan_chunks_partial"`
	ChunksDelivered   int    `json:"chunks_delivered"` // to this query, after its skip filter
	ChunksSkipped     int    `json:"chunks_skipped"`
	ChunksLoaded      int    `json:"chunks_loaded"` // loaded into the database during the scan
	Policy            string `json:"policy"`
	// TerminatedEarly reports the physical scan stopped before end-of-file
	// because every query it served was provably complete; ChunksSaved is
	// how many chunks that saved reading or converting.
	TerminatedEarly bool `json:"terminated_early"`
	ChunksSaved     int  `json:"chunks_saved"`
	// OLA, present only for sampled (online-aggregation) queries, reports
	// the sampling outcome.
	OLA *olaStats `json:"ola,omitempty"`
}

// olaStats is the sampling report of an online-aggregation query.
type olaStats struct {
	ChunksSampled int `json:"chunks_sampled"`
	ChunksTotal   int `json:"chunks_total"`
	// MaxRelError is the worst relative half-width across the result's
	// bounds; -1 when no bound was ever formed (e.g. cancelled before
	// MinChunks). Exact results report 0.
	MaxRelError float64 `json:"max_rel_error"`
	Converged   bool    `json:"converged"`
	Exact       bool    `json:"exact"`
	Tolerance   float64 `json:"tolerance"`
	Confidence  float64 `json:"confidence"`
	Seed        int64   `json:"seed"`
}

// queryResponse is the non-streaming POST /query reply.
type queryResponse struct {
	Columns []string   `json:"columns"`
	Rows    [][]any    `json:"rows"`
	Stats   queryStats `json:"stats"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// fromTable scans the SQL text for the FROM table name so the query can be
// bound against the right schema (the real parse happens with that schema).
func fromTable(sql string) (string, error) {
	fields := strings.Fields(sql)
	for i, f := range fields {
		if strings.EqualFold(f, "FROM") && i+1 < len(fields) {
			return strings.Trim(fields[i+1], ","), nil
		}
	}
	return "", fmt.Errorf("query has no FROM clause")
}

// olaRequest is the resolved online-aggregation decision for one query:
// whether the sampled path runs, with what tolerance, confidence, and
// permutation seed.
type olaRequest struct {
	active bool
	cfg    ola.Config
	seed   int64
}

// olaParams resolves the OLA query parameters against the server defaults.
// ?error= activates online aggregation for this query (0 keeps the sampled
// scan but forbids early termination — the answer is exact); a positive
// Config.OLAError activates it by default for every eligible aggregate.
// An explicitly requested ?error= on an ineligible query is the client's
// mistake and errors out; a server default on an ineligible query silently
// takes the plain path.
func (s *Server) olaParams(r *http.Request, q *engine.Query) (olaRequest, error) {
	qs := r.URL.Query()
	out := olaRequest{seed: 1}
	tol := s.cfg.OLAError
	explicit := false
	if es := qs.Get("error"); es != "" {
		v, err := strconv.ParseFloat(es, 64)
		if err != nil || math.IsNaN(v) || v < 0 {
			return out, fmt.Errorf("bad error parameter %q: want a fraction >= 0", es)
		}
		tol, explicit = v, true
	}
	if !explicit && s.cfg.OLAError <= 0 {
		return out, nil
	}
	conf := s.cfg.OLAConfidence
	if cs := qs.Get("confidence"); cs != "" {
		v, err := strconv.ParseFloat(cs, 64)
		if err != nil || !(v > 0 && v < 1) {
			return out, fmt.Errorf("bad confidence parameter %q: want 0 < c < 1", cs)
		}
		conf = v
	}
	if conf == 0 {
		conf = ola.DefaultConfidence
	}
	if ss := qs.Get("seed"); ss != "" {
		v, err := strconv.ParseInt(ss, 10, 64)
		if err != nil {
			return out, fmt.Errorf("bad seed parameter %q", ss)
		}
		out.seed = v
	}
	if err := ola.Eligible(q); err != nil {
		if explicit {
			return out, fmt.Errorf("online aggregation: %v", err)
		}
		return olaRequest{}, nil
	}
	out.active = true
	out.cfg = ola.Config{Confidence: conf, Tolerance: tol}
	return out, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var qr queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&qr); err != nil {
		writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return
	}
	if strings.TrimSpace(qr.SQL) == "" {
		writeError(w, http.StatusBadRequest, "empty sql")
		return
	}
	from, err := fromTable(qr.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mu.RLock()
	entry, ok := s.tables[from]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown table %q", from)
		return
	}
	q, err := engine.ParseSQL(qr.SQL, entry.table.Schema())
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	olaReq, err := s.olaParams(r, q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Executor selection. The operator's ConsumeWorkers setting decides the
	// consume parallelism; online-aggregation queries get a sampled-scan
	// runner (streamed as converging estimates under NDJSON); non-aggregate
	// queries asked for as NDJSON get a streamer — incremental chunk-order
	// emission when there is no ORDER BY, merge-on-emit (sorted runs through
	// a loser tree) when there is — everything else materializes through the
	// serial or parallel engine executor.
	workers := entry.cfg.ConsumeWorkers
	if workers < 1 {
		workers = 1
	}
	wantStream := r.URL.Query().Get("stream") == "ndjson"
	var (
		ex        executor
		streamer  rowStreamer
		olaRunner *ola.Runner
	)
	switch {
	case olaReq.active && wantStream:
		var os *olaStreamer
		os, err = newOLAStreamer(q, entry.table.Schema(), olaReq.cfg)
		if err == nil {
			streamer, ex, olaRunner = os, os, os.runner
		}
	case olaReq.active:
		olaRunner, err = ola.NewRunner(q, entry.table.Schema(), olaReq.cfg, nil)
		ex = olaRunner
	case wantStream && !q.IsAggregate() && len(q.OrderBy) == 0:
		streamer, err = newNDJSONStreamer(q, entry.table.Schema(), workers)
		ex = streamer
	case wantStream && !q.IsAggregate():
		streamer, err = newOrderedStreamer(q, entry.table.Schema(), workers)
		ex = streamer
	case workers > 1:
		ex, err = engine.NewParallelExecutor(q, entry.table.Schema(), workers)
	default:
		ex, err = engine.NewExecutor(q, entry.table.Schema())
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Admission control: take a worker slot or shed the query now. A 429
	// is cheap for the client to retry; an unbounded queue is not.
	select {
	case s.slots <- struct{}{}:
	default:
		s.met.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d queries in flight)", s.cfg.MaxConcurrent)
		return
	}
	defer func() { <-s.slots }()
	s.met.queries.Add(1)
	if olaReq.active {
		s.met.olaQueries.Add(1)
	}
	s.met.policyCount(entry.cfg.Policy)
	s.recordAccess(entry, q.RequiredColumns())

	ctx := r.Context()
	timeout := s.cfg.DefaultTimeout
	if qr.TimeoutMS > 0 {
		timeout = time.Duration(qr.TimeoutMS) * time.Millisecond
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	start := time.Now()
	if streamer != nil {
		// The columns header (and the 200) must go out before the scan can
		// start pushing rows. From here on errors are in-band NDJSON lines.
		streamer.start(w)
	}
	p := &pending{
		ctx: ctx, q: q, ex: ex, stream: streamer, consumeWorkers: workers,
		olaRunner: olaRunner, olaSeed: olaReq.seed,
		result: make(chan pendingResult, 1),
	}
	s.batcherFor(entry).submit(p)

	var pr pendingResult
	select {
	case pr = <-p.result:
	case <-ctx.Done():
		// The batch will still deposit a result (the channel is buffered),
		// but the client is gone or out of time — report and bail.
		s.accountCancelled(ctx.Err())
		if streamer != nil {
			streamer.fail(fmt.Errorf("query cancelled: %v", ctx.Err()))
			return
		}
		s.writeCancelled(w, ctx.Err())
		return
	}
	if pr.err != nil {
		if errors.Is(pr.err, ctx.Err()) && ctx.Err() != nil {
			s.accountCancelled(ctx.Err())
			if streamer != nil {
				streamer.fail(fmt.Errorf("query cancelled: %v", ctx.Err()))
				return
			}
			s.writeCancelled(w, ctx.Err())
			return
		}
		s.met.failed.Add(1)
		if streamer != nil {
			streamer.fail(pr.err)
			return
		}
		writeError(w, http.StatusInternalServerError, "%v", pr.err)
		return
	}

	st := queryStats{
		DurationMS:        float64(time.Since(start).Microseconds()) / 1000,
		BatchSize:         pr.batchSize,
		ScanChunksCache:   pr.scan.DeliveredCache,
		ScanChunksDB:      pr.scan.DeliveredDB,
		ScanChunksRaw:     pr.scan.DeliveredRaw,
		ScanChunksPartial: pr.scan.DeliveredPartial,
		ChunksDelivered:   pr.shared.DeliveredChunks,
		ChunksSkipped:     pr.shared.SkippedChunks,
		ChunksLoaded:      pr.scan.WrittenDuringRun,
		Policy:            entry.cfg.Policy.String(),
		TerminatedEarly:   pr.scan.TerminatedEarly,
		ChunksSaved:       pr.scan.ChunksSaved,
	}
	if olaRunner != nil {
		last := olaRunner.LastSnapshot()
		exact := olaRunner.Exact()
		maxRel := last.MaxRel
		switch {
		case exact:
			maxRel = 0
		case math.IsNaN(maxRel) || math.IsInf(maxRel, 0):
			maxRel = -1 // no bound formed yet
		}
		st.OLA = &olaStats{
			ChunksSampled: last.Chunks,
			ChunksTotal:   last.Total,
			MaxRelError:   maxRel,
			Converged:     olaRunner.Satisfied(),
			Exact:         exact,
			Tolerance:     olaReq.cfg.Tolerance,
			Confidence:    olaReq.cfg.Confidence,
			Seed:          olaReq.seed,
		}
		s.met.olaChunksSampled.Add(int64(last.Chunks))
		if pr.scan.TerminatedEarly {
			s.met.olaEarlyTerminations.Add(1)
		}
	}
	if streamer != nil {
		// Rows already streamed chunk-by-chunk; close with the stats trailer.
		streamer.finishOK(st)
		return
	}
	if wantStream {
		// Aggregate results cannot stream incrementally (they only exist
		// after the final fold); stream the materialized rows.
		s.writeNDJSON(w, pr.res, st)
		return
	}
	rows := make([][]any, len(pr.res.Rows))
	for i, row := range pr.res.Rows {
		rows[i] = jsonRow(row)
	}
	writeJSON(w, http.StatusOK, queryResponse{Columns: pr.res.Cols, Rows: rows, Stats: st})
}

// accountCancelled records a query cut short by its context in the
// serving counters.
func (s *Server) accountCancelled(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.met.timedOut.Add(1)
		return
	}
	s.met.cancelled.Add(1)
}

// writeCancelled reports a cancelled query to a client whose response has
// not started yet.
func (s *Server) writeCancelled(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, "query timed out")
		return
	}
	// Client disconnect: the response writer is dead; account it only.
	writeError(w, statusClientClosedRequest, "query cancelled")
}

// statusClientClosedRequest is nginx's conventional status for a client
// that went away before the response; nothing reads it, but logs do.
const statusClientClosedRequest = 499

// writeNDJSON streams a result as newline-delimited JSON: a columns
// header, one line per row, and a stats trailer.
func (s *Server) writeNDJSON(w http.ResponseWriter, res *engine.Result, st queryStats) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	_ = enc.Encode(map[string]any{"columns": res.Cols})
	flusher, _ := w.(http.Flusher)
	for i, row := range res.Rows {
		_ = enc.Encode(jsonRow(row))
		// Flush periodically so large results stream instead of buffering.
		if flusher != nil && i%1024 == 1023 {
			flusher.Flush()
		}
	}
	_ = enc.Encode(map[string]any{"stats": st})
}

// jsonRow converts engine values into JSON-encodable scalars.
func jsonRow(row []engine.Value) []any {
	out := make([]any, len(row))
	for i, v := range row {
		switch v.Typ {
		case schema.Int64:
			out[i] = v.Int
		case schema.Float64:
			out[i] = v.Float
		default:
			out[i] = v.Str
		}
	}
	return out
}

// TableStatus is one GET /tables entry: catalog identity plus loading
// progress.
type TableStatus struct {
	Name         string         `json:"name"`
	Columns      []ColumnStatus `json:"columns"`
	RawFile      string         `json:"raw_file"`
	Chunks       int            `json:"chunks"`
	LoadedChunks int            `json:"loaded_chunks"` // chunks with every column in the database
	Complete     bool           `json:"complete"`      // all chunk boundaries known
	FullyLoaded  bool           `json:"fully_loaded"`
	LiveOperator bool           `json:"live_operator"`
	Policy       string         `json:"policy"`
}

// ColumnStatus is one schema column of a served table.
type ColumnStatus struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	entries := make([]*tableEntry, 0, len(s.tables))
	for _, e := range s.tables {
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	out := make([]TableStatus, 0, len(entries))
	for _, e := range entries {
		t := e.table
		sch := t.Schema()
		cols := make([]ColumnStatus, sch.NumColumns())
		all := make([]int, sch.NumColumns())
		for i := range cols {
			c := sch.Column(i)
			cols[i] = ColumnStatus{Name: c.Name, Type: c.Type.String()}
			all[i] = i
		}
		_, live := s.reg.Lookup(t.RawFile())
		out = append(out, TableStatus{
			Name:         t.Name(),
			Columns:      cols,
			RawFile:      t.RawFile(),
			Chunks:       t.NumChunks(),
			LoadedChunks: t.CountLoaded(all),
			Complete:     t.Complete(),
			FullyLoaded:  t.FullyLoaded(),
			LiveOperator: live,
			Policy:       e.cfg.Policy.String(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}
