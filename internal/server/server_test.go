package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/gen"
	"scanraw/internal/scanraw"
	"scanraw/internal/vdisk"
)

// serverEnv is a served table over a generated CSV plus a loopback HTTP
// server in front of it.
type serverEnv struct {
	disk *vdisk.Disk
	srv  *Server
	ts   *httptest.Server
	spec gen.CSVSpec
	want int64 // SUM of every cell
}

func newServerEnv(t *testing.T, rows int, d *vdisk.Disk, cfg Config, opCfg scanraw.Config) *serverEnv {
	t.Helper()
	if d == nil {
		d = vdisk.Unlimited()
	}
	spec := gen.CSVSpec{Rows: rows, Cols: 4, Seed: 42, MaxValue: 1000}
	gen.Preload(d, "raw/data.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("data", spec.Schema(), "raw/data.csv")
	if err != nil {
		t.Fatal(err)
	}
	if opCfg.ChunkLines == 0 {
		opCfg.ChunkLines = 64
	}
	s := New(store, cfg)
	if err := s.AddTable(table, opCfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	cols := make([]int, spec.Cols)
	for i := range cols {
		cols[i] = i
	}
	return &serverEnv{
		disk: d, srv: s, ts: ts, spec: spec,
		want: gen.SumRange(spec, cols, 0, spec.Rows),
	}
}

const sumSQL = "SELECT SUM(c0+c1+c2+c3) FROM data"

// postQuery POSTs a /query body and returns status plus decoded JSON.
func postQuery(t *testing.T, env *serverEnv, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(env.ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

// firstValue digs rows[0][0] out of a decoded query response.
func firstValue(t *testing.T, out map[string]any) int64 {
	t.Helper()
	rows, ok := out["rows"].([]any)
	if !ok || len(rows) == 0 {
		t.Fatalf("no rows in response: %v", out)
	}
	row := rows[0].([]any)
	return int64(row[0].(float64))
}

func TestQueryEndToEnd(t *testing.T) {
	env := newServerEnv(t, 512, nil, Config{}, scanraw.Config{Workers: 2, CacheChunks: 8})
	status, out := postQuery(t, env, fmt.Sprintf(`{"sql": %q}`, sumSQL))
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, out)
	}
	if got := firstValue(t, out); got != env.want {
		t.Errorf("sum = %d, want %d", got, env.want)
	}
	stats := out["stats"].(map[string]any)
	if stats["batch_size"].(float64) < 1 {
		t.Errorf("stats.batch_size = %v", stats["batch_size"])
	}
	// WHERE with a predicate still works through the serving path.
	status, out = postQuery(t, env, `{"sql": "SELECT COUNT(*) FROM data WHERE c0 < 0"}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, out)
	}
	if got := firstValue(t, out); got != 0 {
		t.Errorf("count = %d, want 0", got)
	}
}

func TestCoalescingSharesScan(t *testing.T) {
	const clients = 8
	env := newServerEnv(t, 1024, nil,
		Config{MaxConcurrent: 16, CoalesceWindow: 50 * time.Millisecond},
		scanraw.Config{Workers: 4, CacheChunks: 4, Policy: scanraw.Speculative, Safeguard: true})

	var wg sync.WaitGroup
	start := make(chan struct{})
	sums := make([]int64, clients)
	batchSizes := make([]int, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(env.ts.URL+"/query", "application/json",
				strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sumSQL)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %v", resp.StatusCode, out)
				return
			}
			rows := out["rows"].([]any)
			sums[i] = int64(rows[0].([]any)[0].(float64))
			batchSizes[i] = int(out["stats"].(map[string]any)["batch_size"].(float64))
		}(i)
	}
	close(start)
	wg.Wait()

	shared := 0
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if sums[i] != env.want {
			t.Errorf("client %d: sum = %d, want %d", i, sums[i], env.want)
		}
		if batchSizes[i] > 1 {
			shared++
		}
	}
	snap := env.srv.MetricsSnapshot()
	if snap.Queries != clients {
		t.Errorf("queries_total = %d, want %d", snap.Queries, clients)
	}
	if snap.PhysicalScans >= clients {
		t.Errorf("physical scans = %d for %d queries: coalescing did not merge any",
			snap.PhysicalScans, clients)
	}
	if shared == 0 || snap.CoalescedQueries == 0 {
		t.Errorf("no query shared its scan (batch sizes %v, coalesced_total %d)",
			batchSizes, snap.CoalescedQueries)
	}
}

func TestAdmissionControlShedsWith429(t *testing.T) {
	// One slot, slow disk: the first query occupies the server while the
	// second arrives and must be shed immediately.
	d := vdisk.New(vdisk.Config{ReadBandwidth: 1 << 18, WriteBandwidth: 1 << 18})
	env := newServerEnv(t, 4096, d,
		Config{MaxConcurrent: 1, CoalesceWindow: -1},
		scanraw.Config{Workers: 2, ChunkLines: 256, CacheChunks: 2})

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(env.ts.URL+"/query", "application/json",
			strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sumSQL)))
		if err != nil {
			firstDone <- err
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			firstDone <- fmt.Errorf("first query status %d", resp.StatusCode)
			return
		}
		firstDone <- nil
	}()

	// Wait until the first query holds the admission slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(env.srv.slots) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first query never took the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(env.ts.URL+"/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sumSQL)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("second query status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response lacks Retry-After")
	}
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if snap := env.srv.MetricsSnapshot(); snap.Rejected == 0 {
		t.Errorf("rejected_total = %d, want > 0", snap.Rejected)
	}
}

func TestDisconnectCancelsScanAndFreesDisk(t *testing.T) {
	d := vdisk.New(vdisk.Config{ReadBandwidth: 1 << 18, WriteBandwidth: 1 << 18})
	env := newServerEnv(t, 4096, d,
		Config{MaxConcurrent: 4},
		scanraw.Config{Workers: 2, ChunkLines: 256, CacheChunks: 2})

	// A client starts a slow scan, then walks away mid-query.
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, env.ts.URL+"/query",
		strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sumSQL)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	if _, err := http.DefaultClient.Do(req); err == nil {
		t.Fatal("request should have failed with a cancelled context")
	}

	// The abandoned scan must wind down, release the disk accessor and the
	// operator's run mutex, and get accounted as cancelled.
	deadline := time.Now().Add(5 * time.Second)
	for env.srv.MetricsSnapshot().Cancelled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("cancelled_total never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// A fresh query runs to completion with the right answer.
	status, out := postQuery(t, env, fmt.Sprintf(`{"sql": %q}`, sumSQL))
	if status != http.StatusOK {
		t.Fatalf("follow-up status = %d: %v", status, out)
	}
	if got := firstValue(t, out); got != env.want {
		t.Errorf("follow-up sum = %d, want %d", got, env.want)
	}
}

func TestQueryTimeoutReturns504(t *testing.T) {
	d := vdisk.New(vdisk.Config{ReadBandwidth: 1 << 18, WriteBandwidth: 1 << 18})
	env := newServerEnv(t, 4096, d,
		Config{},
		scanraw.Config{Workers: 2, ChunkLines: 256, CacheChunks: 2})
	status, out := postQuery(t, env, fmt.Sprintf(`{"sql": %q, "timeout_ms": 5}`, sumSQL))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %v", status, out)
	}
	if snap := env.srv.MetricsSnapshot(); snap.TimedOut == 0 {
		t.Errorf("timed_out_total = %d, want > 0", snap.TimedOut)
	}
	// Timed-out pipeline released everything: retry without a limit works.
	status, out = postQuery(t, env, fmt.Sprintf(`{"sql": %q}`, sumSQL))
	if status != http.StatusOK {
		t.Fatalf("retry status = %d: %v", status, out)
	}
	if got := firstValue(t, out); got != env.want {
		t.Errorf("retry sum = %d, want %d", got, env.want)
	}
}

func TestErrorResponses(t *testing.T) {
	env := newServerEnv(t, 128, nil, Config{}, scanraw.Config{Workers: 2})
	cases := []struct {
		body string
		want int
	}{
		{`{`, http.StatusBadRequest},                                        // malformed JSON
		{`{"sql": ""}`, http.StatusBadRequest},                              // empty SQL
		{`{"sql": "SELECT SUM(c0)"}`, http.StatusBadRequest},                // no FROM
		{`{"sql": "SELECT SUM(c0) FROM nope"}`, http.StatusNotFound},        // unknown table
		{`{"sql": "SELECT SUM(missing) FROM data"}`, http.StatusBadRequest}, // bad column
	}
	for _, c := range cases {
		status, out := postQuery(t, env, c.body)
		if status != c.want {
			t.Errorf("body %s: status = %d, want %d (%v)", c.body, status, c.want, out)
		}
		if _, ok := out["error"]; !ok {
			t.Errorf("body %s: error response lacks error field: %v", c.body, out)
		}
	}
}

func TestNDJSONStreaming(t *testing.T) {
	env := newServerEnv(t, 256, nil, Config{}, scanraw.Config{Workers: 2})
	resp, err := http.Post(env.ts.URL+"/query?stream=ndjson", "application/json",
		strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sumSQL)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var lines []map[string]any
	var rows [][]any
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if bytes.HasPrefix(line, []byte("[")) {
			var row []any
			if err := json.Unmarshal(line, &row); err != nil {
				t.Fatalf("row line %s: %v", line, err)
			}
			rows = append(rows, row)
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("line %s: %v", line, err)
		}
		lines = append(lines, obj)
	}
	if len(lines) != 2 {
		t.Fatalf("want columns header + stats trailer, got %d objects", len(lines))
	}
	if _, ok := lines[0]["columns"]; !ok {
		t.Errorf("first line is not a columns header: %v", lines[0])
	}
	if _, ok := lines[1]["stats"]; !ok {
		t.Errorf("last line is not a stats trailer: %v", lines[1])
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(rows))
	}
	if got := int64(rows[0][0].(float64)); got != env.want {
		t.Errorf("streamed sum = %d, want %d", got, env.want)
	}
}

// readNDJSON splits a streaming response into its row lines (JSON arrays)
// and object lines (header, trailer, in-band errors).
func readNDJSON(t *testing.T, body io.Reader) (rows [][]any, objs []map[string]any) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if bytes.HasPrefix(line, []byte("[")) {
			var row []any
			if err := json.Unmarshal(line, &row); err != nil {
				t.Fatalf("row line %s: %v", line, err)
			}
			rows = append(rows, row)
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("line %s: %v", line, err)
		}
		objs = append(objs, obj)
	}
	return rows, objs
}

// TestParallelConsumeServing drives the server with ConsumeWorkers > 1:
// aggregate results must be bit-identical to the serial configuration, and
// streamed non-aggregate rows must come back in canonical (chunk, row)
// order despite the concurrent delivery underneath.
func TestParallelConsumeServing(t *testing.T) {
	serial := newServerEnv(t, 2048, nil, Config{}, scanraw.Config{Workers: 2, CacheChunks: 8})
	par := newServerEnv(t, 2048, nil, Config{},
		scanraw.Config{Workers: 2, CacheChunks: 8, ConsumeWorkers: 4})

	queries := []string{
		sumSQL,
		"SELECT c0, SUM(c1), COUNT(*) FROM data WHERE c2 < 700 GROUP BY c0 ORDER BY c0 LIMIT 20",
		"SELECT c0, c1 FROM data WHERE c3 >= 900",
	}
	for _, sql := range queries {
		body := fmt.Sprintf(`{"sql": %q}`, sql)
		st1, out1 := postQuery(t, serial, body)
		st2, out2 := postQuery(t, par, body)
		if st1 != http.StatusOK || st2 != http.StatusOK {
			t.Fatalf("%s: status serial=%d parallel=%d", sql, st1, st2)
		}
		r1, _ := json.Marshal(out1["rows"])
		r2, _ := json.Marshal(out2["rows"])
		if !bytes.Equal(r1, r2) {
			t.Errorf("%s: parallel rows differ from serial\nserial:   %s\nparallel: %s", sql, r1, r2)
		}
	}

	// Stream the non-aggregate query from the parallel server: the rows
	// must match the materialized result in the same order.
	sql := "SELECT c0, c1 FROM data WHERE c3 >= 900"
	_, out := postQuery(t, par, fmt.Sprintf(`{"sql": %q}`, sql))
	want, _ := json.Marshal(out["rows"])
	resp, err := http.Post(par.ts.URL+"/query?stream=ndjson", "application/json",
		strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sql)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rows, objs := readNDJSON(t, resp.Body)
	if len(objs) != 2 {
		t.Fatalf("want header + trailer, got %d objects: %v", len(objs), objs)
	}
	if _, ok := objs[len(objs)-1]["stats"]; !ok {
		t.Errorf("stream did not end with a stats trailer: %v", objs[len(objs)-1])
	}
	got, _ := json.Marshal(rows)
	if !bytes.Equal(got, want) {
		t.Errorf("streamed rows differ from materialized result\nstreamed:     %.200s\nmaterialized: %.200s", got, want)
	}
	if len(rows) == 0 {
		t.Fatal("streamed no rows; predicate expected matches")
	}
}

// TestStreamingLimit checks that a streamed LIMIT stops at the limit.
func TestStreamingLimit(t *testing.T) {
	env := newServerEnv(t, 1024, nil, Config{},
		scanraw.Config{Workers: 2, ConsumeWorkers: 4})
	resp, err := http.Post(env.ts.URL+"/query?stream=ndjson", "application/json",
		strings.NewReader(`{"sql": "SELECT c0 FROM data LIMIT 7"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rows, _ := readNDJSON(t, resp.Body)
	if len(rows) != 7 {
		t.Errorf("streamed %d rows, want 7", len(rows))
	}
}

func TestTablesEndpoint(t *testing.T) {
	env := newServerEnv(t, 256, nil, Config{},
		scanraw.Config{Workers: 2, Policy: scanraw.FullLoad, Safeguard: true})
	// Before any query: catalog known, nothing loaded, no live operator.
	resp, err := http.Get(env.ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	var tables []TableStatus
	if err := json.NewDecoder(resp.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tables) != 1 || tables[0].Name != "data" {
		t.Fatalf("tables = %+v", tables)
	}
	if tables[0].LiveOperator || tables[0].FullyLoaded {
		t.Errorf("fresh table reports live=%v loaded=%v", tables[0].LiveOperator, tables[0].FullyLoaded)
	}
	if len(tables[0].Columns) != 4 || tables[0].Columns[0].Name != "c0" {
		t.Errorf("columns = %+v", tables[0].Columns)
	}

	if status, out := postQuery(t, env, fmt.Sprintf(`{"sql": %q}`, sumSQL)); status != http.StatusOK {
		t.Fatalf("query status = %d: %v", status, out)
	}
	// Loading may finish on the background flusher; wait it out before
	// asserting the catalog view.
	if op, ok := env.srv.Registry().Lookup("raw/data.csv"); ok {
		op.WaitIdle()
	}

	resp, err = http.Get(env.ts.URL + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tables); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !tables[0].Complete || tables[0].Chunks != 4 {
		t.Errorf("after full-load query: complete=%v chunks=%d", tables[0].Complete, tables[0].Chunks)
	}
	if !tables[0].FullyLoaded || tables[0].LoadedChunks != 4 {
		t.Errorf("after full-load query: fully_loaded=%v loaded=%d", tables[0].FullyLoaded, tables[0].LoadedChunks)
	}
}

// TestConcurrentClientsEndToEnd is the acceptance scenario: many
// concurrent clients over loopback against one raw CSV — every client
// gets the right aggregate, the server performs fewer physical scans than
// it serves queries, and the metrics snapshot is populated.
func TestConcurrentClientsEndToEnd(t *testing.T) {
	const clients = 12
	env := newServerEnv(t, 2048, nil,
		Config{MaxConcurrent: clients, CoalesceWindow: 40 * time.Millisecond},
		scanraw.Config{Workers: 4, ChunkLines: 256, CacheChunks: 8,
			Policy: scanraw.Speculative, Safeguard: true, CollectStats: true})

	type result struct {
		got  int64
		want int64
		err  error
	}
	results := make([]result, clients)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			sql, want := sumSQL, env.want
			if i%2 == 1 {
				sql, want = "SELECT COUNT(*) FROM data", int64(env.spec.Rows)
			}
			resp, err := http.Post(env.ts.URL+"/query", "application/json",
				strings.NewReader(fmt.Sprintf(`{"sql": %q}`, sql)))
			if err != nil {
				results[i] = result{err: err}
				return
			}
			defer resp.Body.Close()
			var out map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				results[i] = result{err: err}
				return
			}
			if resp.StatusCode != http.StatusOK {
				results[i] = result{err: fmt.Errorf("status %d: %v", resp.StatusCode, out)}
				return
			}
			rows := out["rows"].([]any)
			results[i] = result{got: int64(rows[0].([]any)[0].(float64)), want: want}
		}(i)
	}
	close(start)
	wg.Wait()
	for i, r := range results {
		if r.err != nil {
			t.Fatalf("client %d: %v", i, r.err)
		}
		if r.got != r.want {
			t.Errorf("client %d: got %d, want %d", i, r.got, r.want)
		}
	}

	snap := env.srv.MetricsSnapshot()
	if snap.Queries != clients {
		t.Errorf("queries_total = %d, want %d", snap.Queries, clients)
	}
	if snap.PhysicalScans >= clients {
		t.Errorf("physical_scans_total = %d, want < %d queries", snap.PhysicalScans, clients)
	}
	if snap.ChunksDelivered.Raw == 0 {
		t.Error("no chunks delivered from the raw file")
	}
	if snap.Tables != 1 || snap.LiveOperators != 1 {
		t.Errorf("tables = %d, live_operators = %d", snap.Tables, snap.LiveOperators)
	}
	if len(snap.QueriesByPolicy) == 0 {
		t.Error("queries_by_policy is empty")
	}
	if snap.CacheEntries == 0 {
		t.Error("cache_entries = 0 after cached scans")
	}
	// Every query has drained, so a nonzero pin gauge is a pin leak.
	if snap.CachePinnedEntries != 0 || snap.CachePinCount != 0 {
		t.Errorf("pin leak: cache_pinned_entries = %d, cache_pin_count = %d, want 0/0",
			snap.CachePinnedEntries, snap.CachePinCount)
	}

	// The /metrics endpoint itself serves the same snapshot as JSON.
	resp, err := http.Get(env.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"queries_total", "physical_scans_total", "worker_busy_percent",
		"disk_busy_percent", "cache_hit_rate", "chunks_delivered", "queries_by_policy",
		"cache_entries", "cache_pinned_entries", "cache_pin_count"} {
		if _, ok := m[key]; !ok {
			t.Errorf("/metrics lacks %q", key)
		}
	}
	if m["queries_total"].(float64) != clients {
		t.Errorf("/metrics queries_total = %v", m["queries_total"])
	}
}
