package bench

import (
	"fmt"
	"io"
	"time"
)

// Experiment identifies one reproducible paper artifact.
type Experiment string

// The experiment identifiers, matching the paper's figure/table numbers.
const (
	ExpFig4   Experiment = "fig4"
	ExpFig5   Experiment = "fig5"
	ExpFig6   Experiment = "fig6"
	ExpFig7   Experiment = "fig7"
	ExpFig8   Experiment = "fig8"
	ExpFig9   Experiment = "fig9"
	ExpTable1 Experiment = "table1"
	// ExpAblations runs the design-choice ablation studies (not a paper
	// artifact; listed by DESIGN.md §5).
	ExpAblations Experiment = "ablations"
)

// AllExperiments lists every paper experiment in paper order (ablations
// run only when requested explicitly).
var AllExperiments = []Experiment{
	ExpFig4, ExpFig5, ExpFig6, ExpFig7, ExpFig8, ExpFig9, ExpTable1,
}

// Run executes one experiment at the given scale and writes its rendered
// tables to w.
func Run(exp Experiment, sc Scale, w io.Writer) error {
	var tables []*Table
	switch exp {
	case ExpFig4:
		r, err := RunFig4(sc, nil)
		if err != nil {
			return err
		}
		tables = r.Tables()
	case ExpFig5:
		r, err := RunFig5(sc, nil)
		if err != nil {
			return err
		}
		tables = r.Tables()
	case ExpFig6:
		r, err := RunFig6(sc)
		if err != nil {
			return err
		}
		tables = r.Tables()
	case ExpFig7:
		r, err := RunFig7(sc)
		if err != nil {
			return err
		}
		tables = r.Tables()
	case ExpFig8:
		r, err := RunFig8(sc, 6)
		if err != nil {
			return err
		}
		tables = r.Tables()
	case ExpFig9:
		r, err := RunFig9(sc, 25*time.Millisecond)
		if err != nil {
			return err
		}
		tables = r.Tables()
	case ExpTable1:
		r, err := RunTable1(sc)
		if err != nil {
			return err
		}
		tables = r.Tables()
	case ExpAblations:
		return RunAblations(sc, w)
	default:
		return fmt.Errorf("bench: unknown experiment %q", exp)
	}
	for _, t := range tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
