package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// tiny returns a scale small enough for unit tests (milliseconds per
// experiment) while keeping multiple chunks per file.
func tiny() Scale {
	return Scale{
		Rows:        1 << 11, // 2048
		Cols:        8,
		ChunkLines:  1 << 7, // 16 chunks
		CacheChunks: 4,
		SAMReads:    1200,
		DiskMBps:    200,
		Reps:        -1, // single measurement keeps unit tests fast
	}
}

func TestCalibrateDisk(t *testing.T) {
	cfg := CalibrateDisk(Scale{Cols: 8}, 6)
	if cfg.ReadBandwidth <= 0 || cfg.WriteBandwidth <= 0 {
		t.Errorf("calibration produced %+v", cfg)
	}
	// Override path.
	cfg2 := CalibrateDisk(Scale{DiskMBps: 123}, 6)
	if cfg2.ReadBandwidth != 123<<20 {
		t.Errorf("override = %d", cfg2.ReadBandwidth)
	}
}

func TestFig4Shapes(t *testing.T) {
	r, err := RunFig4(tiny(), []int{0, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Parallel runs must not be slower than sequential by a wide margin
	// (weak sanity bound; the strong shape claims live in EXPERIMENTS.md).
	seq := r.Rows[0].ExternalTime
	par := r.Rows[2].ExternalTime
	if par > seq*2 {
		t.Errorf("8 workers (%v) much slower than sequential (%v)", par, seq)
	}
	// Full load at 0 workers writes everything; speculative percentage is
	// in range.
	for _, row := range r.Rows {
		if row.SpeculativeLoadedPct < 0 || row.SpeculativeLoadedPct > 100 {
			t.Errorf("loaded pct = %v", row.SpeculativeLoadedPct)
		}
	}
	tables := r.Tables()
	if len(tables) != 3 {
		t.Fatalf("tables = %d", len(tables))
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if !strings.Contains(buf.String(), "Figure 4a") {
		t.Error("rendered output missing title")
	}
}

func TestFig5Shapes(t *testing.T) {
	sc := tiny()
	sc.DiskMBps = -1    // unthrottled disk: stage shares reflect CPU work only
	sc.CPUSlowdown = -1 // unstretched: a stray GC pause is not multiplied
	sc.Reps = 5         // average out scheduler noise on small chunks
	sc.Rows = 1 << 12   // 16 chunks of 256 lines
	r, err := RunFig5(sc, []int{2, 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	narrow, wide := r.Rows[0], r.Rows[1]
	// Per-chunk total and PARSE time must grow with column count (chunks
	// carry 32x the bytes and fields). The 2x bound is deliberately loose:
	// the point is direction, not magnitude, on a noisy 1-core host.
	if wide.Total() < 2*narrow.Total() {
		t.Errorf("64-col per-chunk time (%v) should far exceed 2-col (%v)",
			wide.Total(), narrow.Total())
	}
	if wide.Parse < 2*narrow.Parse {
		t.Errorf("PARSE per chunk grew only %v -> %v from 2 to 64 columns",
			narrow.Parse, wide.Parse)
	}
	// Conversion must dwarf I/O on the unthrottled disk, and PARSE must be
	// a major component of it. (Exact tokenize:parse ratios shift under
	// -race instrumentation, so the bound is loose.)
	if wide.Parse < wide.Read || wide.Parse*2 < wide.Tokenize {
		t.Errorf("at 64 columns PARSE (%v) should rival tokenize (%v) and dominate read (%v)",
			wide.Parse, wide.Tokenize, wide.Read)
	}
}

func TestFig6Runs(t *testing.T) {
	sc := tiny()
	sc.Cols = 64
	r, err := RunFig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != len(Fig6NumCols)*len(Fig6Positions) {
		t.Errorf("cells = %d", len(r.Cells))
	}
	var buf bytes.Buffer
	for _, tb := range r.Tables() {
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFig7Runs(t *testing.T) {
	r, err := RunFig7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) == 0 {
		t.Fatal("no cells")
	}
	for _, c := range r.Cells {
		if c.Time <= 0 {
			t.Errorf("cell %+v has non-positive time", c)
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	r, err := RunFig8(tiny(), 5)
	if err != nil {
		t.Fatal(err)
	}
	bySeries := map[Fig8Method]Fig8Series{}
	for _, s := range r.Series {
		bySeries[s.Method] = s
		if len(s.Times) != 5 {
			t.Fatalf("%s has %d times", s.Method, len(s.Times))
		}
	}
	// load+db is fully loaded after query 1 and never reloads.
	ldb := bySeries[MethodLoadDB]
	if ldb.Loaded[0] != ldb.FileLen {
		t.Errorf("load+db loaded %d/%d after query 1", ldb.Loaded[0], ldb.FileLen)
	}
	// external never loads.
	ext := bySeries[MethodExternal]
	if ext.Loaded[len(ext.Loaded)-1] != 0 {
		t.Errorf("external loaded %d chunks", ext.Loaded[len(ext.Loaded)-1])
	}
	// speculative loading progress is monotone and reaches full load.
	spec := bySeries[MethodSpeculative]
	for i := 1; i < len(spec.Loaded); i++ {
		if spec.Loaded[i] < spec.Loaded[i-1] {
			t.Errorf("speculative loaded regressed at query %d", i+1)
		}
	}
	if spec.Loaded[len(spec.Loaded)-1] != spec.FileLen {
		t.Errorf("speculative never converged: %d/%d", spec.Loaded[len(spec.Loaded)-1], spec.FileLen)
	}
	// buffered also converges (eviction writes + flush).
	buf := bySeries[MethodBuffered]
	if buf.Loaded[len(buf.Loaded)-1] != buf.FileLen {
		t.Errorf("buffered never converged: %d/%d", buf.Loaded[len(buf.Loaded)-1], buf.FileLen)
	}
}

func TestFig9Runs(t *testing.T) {
	sc := tiny()
	sc.DiskMBps = 0   // calibrate so the run is CPU-bound
	sc.Rows = 1 << 14 // enough work for the tracer to observe
	r, err := RunFig9(sc, 500*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Samples) == 0 {
		t.Fatal("no samples collected; run too fast for the tracer")
	}
	last := r.Samples[len(r.Samples)-1]
	if last.Progress <= 0 {
		t.Errorf("final progress = %v", last.Progress)
	}
}

func TestTable1Shapes(t *testing.T) {
	sc := tiny()
	sc.SAMReads = 20000 // large enough that decompression cost is visible
	r, err := RunTable1(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("methods = %d, want 6 (5 paper + 1 extension)", len(r.Rows))
	}
	// All methods agreed on the distribution (validated inside RunTable1);
	// groups must be equal and non-trivial.
	g := r.Rows[0].Groups
	if g < 2 {
		t.Errorf("CIGAR distribution has %d groups; workload too degenerate", g)
	}
	for _, row := range r.Rows {
		if row.Groups != g {
			t.Errorf("%s produced %d groups, want %d", row.Method, row.Groups, g)
		}
	}
	// BAM is smaller than SAM.
	if r.BAMBytes >= r.SAMBytes {
		t.Errorf("BAM (%d) should be smaller than SAM (%d)", r.BAMBytes, r.SAMBytes)
	}
	// Database processing must beat the sequential BAM path.
	times := map[string]time.Duration{}
	for _, row := range r.Rows {
		times[row.Method] = row.Time
	}
	if times["Database processing"] >= times["External tables (BAM + BAMTools)"] {
		t.Errorf("db processing (%v) should beat sequential BAM (%v)",
			times["Database processing"], times["External tables (BAM + BAMTools)"])
	}
	// The indexed parallel decoder (extension) must beat the sequential
	// library path.
	if times["BAM + parallel decode [extension]"] >= times["External tables (BAM + BAMTools)"] {
		t.Errorf("parallel BAM (%v) should beat sequential BAM (%v)",
			times["BAM + parallel decode [extension]"], times["External tables (BAM + BAMTools)"])
	}
}

func TestAblationsRun(t *testing.T) {
	sc := tiny()
	if r, err := RunAblationCacheBias(sc, 3); err != nil || len(r.BiasedTimes) != 3 {
		t.Errorf("cache bias: %v %+v", err, r)
	}
	if r, err := RunAblationSelective(sc); err != nil || r.SelectiveTime <= 0 {
		t.Errorf("selective: %v %+v", err, r)
	} else if r.SelectiveTime > r.FullTime*3 {
		t.Errorf("selective (%v) wildly slower than full (%v)", r.SelectiveTime, r.FullTime)
	}
	if r, err := RunAblationSafeguard(sc, 3); err != nil {
		t.Errorf("safeguard: %v", err)
	} else {
		// With the safeguard, loading progresses every query; without it,
		// an I/O-bound run loads nothing.
		if r.WithLoaded[2] <= r.WithLoaded[0] && r.WithLoaded[0] == 0 {
			t.Errorf("safeguard made no progress: %v", r.WithLoaded)
		}
		if r.WithoutLoaded[2] > r.WithLoaded[2] {
			t.Errorf("safeguard-off loaded more than safeguard-on: %v vs %v",
				r.WithoutLoaded, r.WithLoaded)
		}
	}
	if r, err := RunAblationStats(sc); err != nil {
		t.Errorf("stats: %v", err)
	} else if r.SkippedChunks == 0 {
		t.Errorf("stats ablation skipped no chunks")
	}
	if r, err := RunAblationPositionalMap(sc, 2); err != nil || len(r.WithMapTimes) != 2 {
		t.Errorf("positional map: %v %+v", err, r)
	}
	if r, err := RunAblationPushdown(sc); err != nil {
		t.Errorf("pushdown: %v", err)
	} else {
		if r.Selectivity <= 0 || r.Selectivity > 0.1 {
			t.Errorf("pushdown selectivity = %v, want highly selective", r.Selectivity)
		}
		if r.PushdownTime >= r.StandardTime {
			t.Errorf("pushdown (%v) should beat standard conversion (%v) at %.3f selectivity",
				r.PushdownTime, r.StandardTime, r.Selectivity)
		}
	}
	if r, err := RunAblationWriteGranularity(sc); err != nil {
		t.Errorf("write granularity: %v", err)
	} else if r.SpeculativeLoaded == 0 && r.BufferedLoaded == 0 {
		t.Error("neither granularity loaded anything")
	}
}

func TestSuiteRunUnknown(t *testing.T) {
	if err := Run("nope", tiny(), &bytes.Buffer{}); err == nil {
		t.Error("unknown experiment should fail")
	}
}

func TestSuiteRunAblations(t *testing.T) {
	var buf bytes.Buffer
	if err := Run(ExpAblations, tiny(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"loaded-biased LRU", "selective conversion", "safeguard flush",
		"chunk skipping", "positional-map cache", "push-down selection",
		"write granularity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}
