package bench

import (
	"fmt"
	"io"
	"time"
)

// RunAblations executes every ablation study and renders one table per
// design choice (the DESIGN.md §5 list).
func RunAblations(sc Scale, w io.Writer) error {
	msRow := func(d time.Duration) string { return ms(d) }

	if r, err := RunAblationCacheBias(sc, 4); err != nil {
		return fmt.Errorf("cache bias: %w", err)
	} else {
		t := &Table{
			Title:  "Ablation: loaded-biased LRU vs plain LRU (speculative sequence)",
			Header: []string{"query", "biased ms", "biased loaded", "plain ms", "plain loaded"},
		}
		for q := range r.BiasedTimes {
			t.Rows = append(t.Rows, []string{
				fmtInt(q + 1),
				msRow(r.BiasedTimes[q]), fmtInt(r.BiasedLoaded[q]),
				msRow(r.UnbiasedTimes[q]), fmtInt(r.UnbiasedLoad[q]),
			})
		}
		t.Notes = []string{"bias keeps unloaded chunks cached, so loading progress is at least as fast"}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	if r, err := RunAblationSelective(sc); err != nil {
		return fmt.Errorf("selective: %w", err)
	} else {
		t := &Table{
			Title:  "Ablation: selective conversion (4 columns) vs full conversion",
			Header: []string{"variant", "time (ms)"},
			Rows: [][]string{
				{"selective (4 cols)", msRow(r.SelectiveTime)},
				{"full conversion", msRow(r.FullTime)},
			},
			Notes: []string{"CPU-bound configuration (2 workers) so conversion cost is visible"},
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	if r, err := RunAblationSafeguard(sc, 3); err != nil {
		return fmt.Errorf("safeguard: %w", err)
	} else {
		t := &Table{
			Title:  "Ablation: safeguard flush on/off (I/O-bound speculative sequence)",
			Header: []string{"query", "loaded with safeguard", "loaded without"},
		}
		for q := range r.WithLoaded {
			t.Rows = append(t.Rows, []string{
				fmtInt(q + 1), fmtInt(r.WithLoaded[q]), fmtInt(r.WithoutLoaded[q]),
			})
		}
		t.Notes = []string{"I/O-bound runs have no disk-idle intervals: the safeguard is the only loading mechanism"}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	if r, err := RunAblationStats(sc); err != nil {
		return fmt.Errorf("stats: %w", err)
	} else {
		t := &Table{
			Title:  "Ablation: min/max chunk skipping (selective second query)",
			Header: []string{"variant", "time (ms)", "chunks skipped"},
			Rows: [][]string{
				{"with statistics", msRow(r.WithStatsTime), fmtInt(r.SkippedChunks)},
				{"without statistics", msRow(r.WithoutStatsTime), "0"},
			},
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	if r, err := RunAblationPositionalMap(sc, 3); err != nil {
		return fmt.Errorf("positional map: %w", err)
	} else {
		t := &Table{
			Title:  "Ablation: positional-map cache on/off (external tables, repeat queries)",
			Header: []string{"query", "with maps (ms)", "without (ms)"},
		}
		for q := range r.WithMapTimes {
			t.Rows = append(t.Rows, []string{
				fmtInt(q + 1), msRow(r.WithMapTimes[q]), msRow(r.WithoutMapTimes[q]),
			})
		}
		t.Notes = []string{"the paper's §3.1 prediction: little benefit — the map avoids neither reading nor parsing"}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	if r, err := RunAblationPushdown(sc); err != nil {
		return fmt.Errorf("pushdown: %w", err)
	} else {
		t := &Table{
			Title:  "Ablation: push-down selection in PARSE vs parse-then-filter",
			Header: []string{"variant", "time (ms)"},
			Rows: [][]string{
				{"push-down (convert qualifying tuples only)", msRow(r.PushdownTime)},
				{"standard (convert everything)", msRow(r.StandardTime)},
			},
			Notes: []string{fmt.Sprintf("predicate selectivity %.2f%%; push-down chunks cannot be loaded (§2)", 100*r.Selectivity)},
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}

	if r, err := RunAblationWriteGranularity(sc); err != nil {
		return fmt.Errorf("write granularity: %w", err)
	} else {
		t := &Table{
			Title:  "Ablation: write granularity (CPU-bound first query)",
			Header: []string{"variant", "time (ms)", "chunks loaded"},
			Rows: [][]string{
				{"speculative (oldest-unloaded, one at a time)", msRow(r.SpeculativeTime), fmtInt(r.SpeculativeLoaded)},
				{"buffered (batch on eviction)", msRow(r.BufferedTime), fmtInt(r.BufferedLoaded)},
			},
		}
		if err := t.Render(w); err != nil {
			return err
		}
	}
	return nil
}
