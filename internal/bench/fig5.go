package bench

import (
	"time"

	"scanraw/internal/scanraw"
)

// Fig5Row is one column-count point of Fig. 5: average per-chunk time in
// each pipeline stage under full loading.
type Fig5Row struct {
	Cols     int
	Read     time.Duration
	Tokenize time.Duration
	Parse    time.Duration
	Write    time.Duration
}

// Total is the per-chunk time summed over stages.
func (r Fig5Row) Total() time.Duration { return r.Read + r.Tokenize + r.Parse + r.Write }

// Fig5Result is the full Fig. 5 sweep.
type Fig5Result struct {
	Rows []Fig5Row
}

// Fig5Cols is the paper's x axis (2 to 256 columns in powers of two).
var Fig5Cols = []int{2, 4, 8, 16, 32, 64, 128, 256}

// RunFig5 reproduces Fig. 5 (absolute and relative per-chunk stage times
// as a function of column count). Execution is with full data loading so
// WRITE time is included, as in the paper; the fixed-row-count files mean
// wider files simply carry more bytes per chunk.
func RunFig5(sc Scale, colCounts []int) (*Fig5Result, error) {
	sc = sc.withDefaults()
	if colCounts == nil {
		colCounts = Fig5Cols
	}
	diskCfg := CalibrateDisk(sc, 6)
	res := &Fig5Result{}
	// Use larger chunks (16 per file) than the default so per-chunk stage
	// times are well above timer noise even for 2-column files.
	lines := sc.Rows / 16
	if lines < 1 {
		lines = 1
	}
	for _, nc := range colCounts {
		row := Fig5Row{Cols: nc}
		for rep := 0; rep < sc.Reps; rep++ {
			e := newEnv(sc, diskCfg, sc.Rows, nc)
			op := scanraw.New(e.store, e.table, scanraw.Config{
				CPUSlowdown: sc.slowdown(),
				Workers:     8,
				ChunkLines:  lines,
				Policy:      scanraw.FullLoad,
				CacheChunks: sc.CacheChunks,
				// The figure reports the TOKENIZE/PARSE split; fused kernels
				// collapse both into one pass (all time lands on PARSE), which
				// would erase the paper's stage breakdown.
				FusedKernels: scanraw.FusedOff,
			})
			st, err := runSum(op, e, allCols(nc))
			if err != nil {
				return nil, err
			}
			p := st.Profile
			row.Read += p.Read.PerChunk()
			row.Tokenize += p.Tokenize.PerChunk()
			row.Parse += p.Parse.PerChunk()
			row.Write += p.Write.PerChunk()
		}
		n := time.Duration(sc.Reps)
		row.Read /= n
		row.Tokenize /= n
		row.Parse /= n
		row.Write /= n
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Tables renders the two panels of Fig. 5.
func (r *Fig5Result) Tables() []*Table {
	abs := &Table{
		Title:  "Figure 5a: absolute time per chunk (ms) by stage vs column count",
		Header: []string{"columns", "READ", "TOKENIZE", "PARSE", "WRITE", "total"},
	}
	rel := &Table{
		Title:  "Figure 5b: relative time per chunk (%) by stage vs column count",
		Header: []string{"columns", "READ", "TOKENIZE", "PARSE", "WRITE"},
	}
	for _, row := range r.Rows {
		abs.Rows = append(abs.Rows, []string{
			fmtInt(row.Cols), ms(row.Read), ms(row.Tokenize), ms(row.Parse), ms(row.Write), ms(row.Total()),
		})
		tot := float64(row.Total())
		if tot == 0 {
			tot = 1
		}
		rel.Rows = append(rel.Rows, []string{
			fmtInt(row.Cols),
			pct(100 * float64(row.Read) / tot),
			pct(100 * float64(row.Tokenize) / tot),
			pct(100 * float64(row.Parse) / tot),
			pct(100 * float64(row.Write) / tot),
		})
	}
	abs.Notes = []string{"expected shape: per-chunk time grows with columns; PARSE dominates at high column counts"}
	rel.Notes = []string{"expected shape: I/O share (READ+WRITE) falls (~45%→~20%), PARSE share grows (~30%→~60%)"}
	return []*Table{abs, rel}
}
