package bench

import (
	"time"

	"scanraw/internal/scanraw"
)

// Fig4Row is one x-axis point of the paper's Fig. 4: a worker count with
// the measured behaviour of the three SCANRAW regimes.
type Fig4Row struct {
	Workers int

	SpeculativeTime time.Duration
	ExternalTime    time.Duration
	FullLoadTime    time.Duration

	// LoadedPct is the fraction of chunks loaded into the database by the
	// speculative run (Fig. 4b). External tables is always 0 and full
	// load always 100 by construction.
	SpeculativeLoadedPct float64

	// Speedups relative to each regime's own sequential (0-worker) time
	// (Fig. 4c); Ideal is the worker count itself.
	SpeculativeSpeedup float64
	ExternalSpeedup    float64
	FullLoadSpeedup    float64
}

// Fig4Result is the full Fig. 4 sweep.
type Fig4Result struct {
	Rows     []Fig4Row
	DiskCfg  string
	FileSize int64
}

// Fig4Workers is the paper's x axis.
var Fig4Workers = []int{0, 1, 2, 4, 6, 8, 10, 12, 14, 16}

// RunFig4 reproduces Fig. 4 (execution time, percentage of loaded data,
// and speedup as a function of the number of worker threads) for the
// three regimes: speculative loading, external tables, and query-driven
// full loading. Every (regime, workers) cell runs on a fresh environment
// so no caching carries over; the safeguard is disabled, matching the
// single-query measurement of the paper where Fig. 4b reports zero loaded
// chunks in the I/O-bound region.
func RunFig4(sc Scale, workers []int) (*Fig4Result, error) {
	sc = sc.withDefaults()
	if workers == nil {
		workers = Fig4Workers
	}
	diskCfg := CalibrateDisk(sc, 6)
	res := &Fig4Result{DiskCfg: diskCfg.String(), FileSize: 0}

	measure := func(w int, policy scanraw.WritePolicy) (time.Duration, float64, error) {
		var loadedSum float64
		avg, err := sc.repeat(func() (time.Duration, error) {
			e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
			res.FileSize = e.size
			op := scanraw.New(e.store, e.table, scanraw.Config{
				CPUSlowdown: sc.slowdown(),
				Workers:     w,
				ChunkLines:  sc.ChunkLines,
				Policy:      policy,
				CacheChunks: sc.CacheChunks,
				Safeguard:   false,
			})
			st, err := runSum(op, e, allCols(sc.Cols))
			if err != nil {
				return 0, err
			}
			op.WaitIdle()
			loadedSum += float64(st.WrittenDuringRun) / float64(e.table.NumChunks()) * 100
			return st.Duration, nil
		})
		return avg, loadedSum / float64(sc.Reps), err
	}

	var seqSpec, seqExt, seqLoad time.Duration
	for _, w := range workers {
		row := Fig4Row{Workers: w}
		var err error
		if row.SpeculativeTime, row.SpeculativeLoadedPct, err = measure(w, scanraw.Speculative); err != nil {
			return nil, err
		}
		if row.ExternalTime, _, err = measure(w, scanraw.ExternalTables); err != nil {
			return nil, err
		}
		if row.FullLoadTime, _, err = measure(w, scanraw.FullLoad); err != nil {
			return nil, err
		}
		if w == workers[0] {
			seqSpec, seqExt, seqLoad = row.SpeculativeTime, row.ExternalTime, row.FullLoadTime
		}
		row.SpeculativeSpeedup = ratio(seqSpec, row.SpeculativeTime)
		row.ExternalSpeedup = ratio(seqExt, row.ExternalTime)
		row.FullLoadSpeedup = ratio(seqLoad, row.FullLoadTime)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func ratio(base, x time.Duration) float64 {
	if x <= 0 {
		return 0
	}
	return float64(base) / float64(x)
}

// Tables renders the three panels of Fig. 4.
func (r *Fig4Result) Tables() []*Table {
	a := &Table{
		Title:  "Figure 4a: execution time (ms) vs worker threads",
		Header: []string{"workers", "speculative", "external", "load&process"},
	}
	b := &Table{
		Title:  "Figure 4b: percentage of loaded chunks vs worker threads",
		Header: []string{"workers", "speculative", "external", "load&process"},
	}
	c := &Table{
		Title:  "Figure 4c: speedup vs worker threads",
		Header: []string{"workers", "speculative", "external", "load&process", "ideal"},
	}
	for i, row := range r.Rows {
		w := itoa(row.Workers)
		a.Rows = append(a.Rows, []string{w, ms(row.SpeculativeTime), ms(row.ExternalTime), ms(row.FullLoadTime)})
		b.Rows = append(b.Rows, []string{w, pct(row.SpeculativeLoadedPct), "0.0", "100.0"})
		ideal := row.Workers
		if ideal == 0 {
			ideal = 1
		}
		_ = i
		c.Rows = append(c.Rows, []string{w,
			pct(row.SpeculativeSpeedup), pct(row.ExternalSpeedup), pct(row.FullLoadSpeedup), itoa(ideal)})
	}
	a.Notes = []string{
		"expected shape: time falls with workers and levels off once I/O-bound (~6);",
		"full load matches the others while CPU-bound (writes overlap) and is slower when I/O-bound",
	}
	b.Notes = []string{"expected shape: speculative loads ~everything while CPU-bound, ~nothing once I/O-bound"}
	return []*Table{a, b, c}
}

func itoa(x int) string { return fmtInt(x) }
