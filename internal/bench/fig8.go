package bench

import (
	"fmt"
	"time"

	"scanraw/internal/scanraw"
)

// Fig8Method identifies one of the four compared loading methods.
type Fig8Method string

// The methods of Fig. 8, in the paper's legend order.
const (
	MethodSpeculative Fig8Method = "speculative"
	MethodBuffered    Fig8Method = "buffered"
	MethodLoadDB      Fig8Method = "load+db"
	MethodExternal    Fig8Method = "external"
)

// Fig8Methods lists the compared methods.
var Fig8Methods = []Fig8Method{MethodSpeculative, MethodBuffered, MethodLoadDB, MethodExternal}

// Fig8Series is the per-query measurement for one method.
type Fig8Series struct {
	Method  Fig8Method
	Times   []time.Duration // per-query execution time (Fig. 8a)
	Loaded  []int           // chunks loaded after query i (incl. flush)
	FileLen int
}

// Cumulative returns the running total after each query (Fig. 8b).
func (s Fig8Series) Cumulative() []time.Duration {
	out := make([]time.Duration, len(s.Times))
	var sum time.Duration
	for i, t := range s.Times {
		sum += t
		out[i] = sum
	}
	return out
}

// Fig8Result is the full experiment.
type Fig8Result struct {
	Queries int
	Series  []Fig8Series
}

// RunFig8 reproduces Fig. 8: the same SUM-over-all-columns query executed
// queries times in sequence, for four loading methods. The binary cache
// holds 1/4 of the file's chunks (the paper's 32-of-128 configuration)
// and each method keeps one operator alive across the sequence:
//
//   - speculative: the paper's policy with the safeguard flush
//   - buffered: write chunks when the cache evicts them, flush at end
//   - load+db: query 1 performs full loading, the rest are database scans
//   - external: convert from raw every time; per the paper's definition
//     (§2) converted data are discarded after each query
func RunFig8(sc Scale, queries int) (*Fig8Result, error) {
	sc = sc.withDefaults()
	if queries <= 0 {
		queries = 6
	}
	diskCfg := CalibrateDisk(sc, 6)
	res := &Fig8Result{Queries: queries}

	for _, m := range Fig8Methods {
		series := Fig8Series{Method: m, Times: make([]time.Duration, queries), Loaded: make([]int, queries)}
		for rep := 0; rep < sc.Reps; rep++ {
			e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
			numChunks := (sc.Rows + sc.ChunkLines - 1) / sc.ChunkLines
			cfg := scanraw.Config{
				CPUSlowdown: sc.slowdown(),
				Workers:     8,
				ChunkLines:  sc.ChunkLines,
				CacheChunks: numChunks / 4,
			}
			switch m {
			case MethodSpeculative:
				cfg.Policy = scanraw.Speculative
				cfg.Safeguard = true
			case MethodBuffered:
				cfg.Policy = scanraw.BufferedLoad
				cfg.Safeguard = true
			case MethodLoadDB:
				cfg.Policy = scanraw.FullLoad
			case MethodExternal:
				cfg.Policy = scanraw.ExternalTables
			}
			op := scanraw.New(e.store, e.table, cfg)
			for q := 0; q < queries; q++ {
				st, err := runSum(op, e, allCols(sc.Cols))
				if err != nil {
					return nil, fmt.Errorf("%s query %d: %w", m, q+1, err)
				}
				if m == MethodExternal {
					// External tables discard converted data after the
					// query (§2).
					op.Cache().Clear()
				}
				// NOTE: deliberately no WaitIdle here — the safeguard
				// flush runs in the background and the *next* query's
				// disk reads wait for it (§4), so its cost lands inside
				// that query's measured time exactly as in the paper.
				// Loaded counts are sampled with any in-flight flush
				// still running.
				series.Times[q] += st.Duration
				if rep == sc.Reps-1 {
					series.Loaded[q] = e.table.CountLoaded(allCols(sc.Cols))
					series.FileLen = e.table.NumChunks()
				}
			}
		}
		for q := range series.Times {
			series.Times[q] /= time.Duration(sc.Reps)
		}
		res.Series = append(res.Series, series)
	}
	return res, nil
}

// Tables renders the two panels of Fig. 8 plus the loaded-chunk counts.
func (r *Fig8Result) Tables() []*Table {
	a := &Table{
		Title:  "Figure 8a: execution time (ms) for query i",
		Header: []string{"query"},
	}
	b := &Table{
		Title:  "Figure 8b: cumulative execution time (ms) up to query i",
		Header: []string{"query"},
	}
	l := &Table{
		Title:  "Figure 8 companion: chunks loaded after query i",
		Header: []string{"query"},
	}
	for _, s := range r.Series {
		a.Header = append(a.Header, string(s.Method))
		b.Header = append(b.Header, string(s.Method))
		l.Header = append(l.Header, string(s.Method))
	}
	for q := 0; q < r.Queries; q++ {
		ra := []string{fmtInt(q + 1)}
		rb := []string{fmtInt(q + 1)}
		rl := []string{fmtInt(q + 1)}
		for _, s := range r.Series {
			ra = append(ra, ms(s.Times[q]))
			rb = append(rb, ms(s.Cumulative()[q]))
			rl = append(rl, fmt.Sprintf("%d/%d", s.Loaded[q], s.FileLen))
		}
		a.Rows = append(a.Rows, ra)
		b.Rows = append(b.Rows, rb)
		l.Rows = append(l.Rows, rl)
	}
	a.Notes = []string{
		"expected shape: external constant; load+db pays everything in query 1 then is fastest;",
		"speculative matches external in query 1 and converges to load+db within ~5 queries;",
		"buffered splits loading across the first queries",
	}
	b.Notes = []string{"expected shape: speculative cumulative is lowest (or tied) at every point"}
	return []*Table{a, b, l}
}
