package bench

import (
	"sync/atomic"
	"time"

	"scanraw/internal/engine"
	"scanraw/internal/metrics"
	"scanraw/internal/scanraw"
)

// Fig9Result is the resource-utilization trace of Fig. 9.
type Fig9Result struct {
	Samples []metrics.Sample
	Workers int
}

// RunFig9 reproduces Fig. 9: CPU and I/O utilization while SCANRAW
// processes a wide (4x the base column count) file with speculative
// loading in a CPU-bound configuration. The disk is calibrated so that
// even the full worker pool cannot saturate it, which makes READ block
// and lets the scheduler alternate between reading and speculative
// writing — the alternation visible in the paper's plot.
func RunFig9(sc Scale, sampleEvery time.Duration) (*Fig9Result, error) {
	sc = sc.withDefaults()
	if sampleEvery <= 0 {
		sampleEvery = 10 * time.Millisecond
	}
	const workers = 8
	cols := sc.Cols * 4
	// Calibrate the disk as if 24 workers were needed to saturate it:
	// with only 8, execution stays CPU-bound like the paper's 256-column
	// configuration.
	diskCfg := CalibrateDisk(sc, 3*workers)
	e := newEnv(sc, diskCfg, sc.Rows, cols)
	op := scanraw.New(e.store, e.table, scanraw.Config{
		CPUSlowdown: sc.slowdown(),
		Workers:     workers,
		ChunkLines:  sc.ChunkLines,
		Policy:      scanraw.Speculative,
		CacheChunks: sc.CacheChunks,
	})

	total := (sc.Rows + sc.ChunkLines - 1) / sc.ChunkLines
	var deliveredChunks atomic.Int64
	tracer := metrics.NewTracer(e.disk, op.CPU(), sampleEvery, func() float64 {
		return float64(deliveredChunks.Load()) / float64(total)
	})

	q, err := engine.SumAllColumns(e.table.Schema(), e.table.Name(), allCols(cols))
	if err != nil {
		return nil, err
	}
	ex, err := engine.NewExecutor(q, e.table.Schema())
	if err != nil {
		return nil, err
	}
	tracer.Start()
	_, err = op.Run(scanraw.Request{
		Columns: q.RequiredColumns(),
		Deliver: func(bc *scanraw.BinaryChunk) error {
			defer deliveredChunks.Add(1)
			return ex.Consume(bc)
		},
	})
	samples := tracer.Stop()
	if err != nil {
		return nil, err
	}
	if _, err := ex.Result(); err != nil {
		return nil, err
	}
	return &Fig9Result{Samples: samples, Workers: workers}, nil
}

// Tables renders the utilization trace.
func (r *Fig9Result) Tables() []*Table {
	t := &Table{
		Title:  "Figure 9: resource utilization vs processing progress (speculative loading, CPU-bound)",
		Header: []string{"t (ms)", "progress %", "CPU %", "I/O %", "read %", "write %"},
	}
	for _, s := range r.Samples {
		t.Rows = append(t.Rows, []string{
			ms(s.At),
			pct(100 * s.Progress),
			pct(s.CPUPercent),
			pct(s.IOPercent),
			pct(s.ReadPercent),
			pct(s.WritePercent),
		})
	}
	t.Notes = []string{
		"expected shape: CPU ~= workers x 100% throughout; the scheduler alternates",
		"between READ and WRITE so read% dips are filled by write% bursts",
	}
	return []*Table{t}
}
