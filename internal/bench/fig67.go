package bench

import (
	"time"

	"scanraw/internal/scanraw"
)

// Fig6Cell is one (position, projected-column-count) measurement of
// Fig. 6: the effect of selective tokenizing/parsing.
type Fig6Cell struct {
	Position int
	NumCols  int
	Time     time.Duration
}

// Fig6Result is the full Fig. 6 grid.
type Fig6Result struct {
	Cells []Fig6Cell
}

// Paper parameters: a contiguous subset of the 64 columns is projected,
// varying how many (1..32) and where the subset starts (0..32).
var (
	Fig6NumCols   = []int{1, 8, 16, 32}
	Fig6Positions = []int{0, 8, 16, 32}
)

// RunFig6 reproduces Fig. 6 (execution time vs number and position of the
// projected columns, 8 worker threads). Selective tokenizing stops the
// line scan at the last needed attribute and selective parsing converts
// only the projected ones.
func RunFig6(sc Scale) (*Fig6Result, error) {
	sc = sc.withDefaults()
	diskCfg := CalibrateDisk(sc, 6)
	res := &Fig6Result{}
	for _, pos := range Fig6Positions {
		for _, nc := range Fig6NumCols {
			if pos+nc > sc.Cols {
				continue
			}
			cols := make([]int, nc)
			for i := range cols {
				cols[i] = pos + i
			}
			avg, err := sc.repeat(func() (time.Duration, error) {
				e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
				op := scanraw.New(e.store, e.table, scanraw.Config{
					CPUSlowdown: sc.slowdown(),
					Workers:     8,
					ChunkLines:  sc.ChunkLines,
					Policy:      scanraw.ExternalTables,
					CacheChunks: sc.CacheChunks,
				})
				st, err := runSum(op, e, cols)
				return st.Duration, err
			})
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig6Cell{Position: pos, NumCols: nc, Time: avg})
		}
	}
	return res, nil
}

// Tables renders Fig. 6 with positions as rows and column counts as
// series.
func (r *Fig6Result) Tables() []*Table {
	t := &Table{
		Title:  "Figure 6: execution time (ms) vs projected columns and first-column position",
		Header: []string{"position"},
	}
	for _, nc := range Fig6NumCols {
		t.Header = append(t.Header, fmtInt(nc)+" col")
	}
	for _, pos := range Fig6Positions {
		row := []string{"pos " + fmtInt(pos)}
		for _, nc := range Fig6NumCols {
			cell := "-"
			for _, c := range r.Cells {
				if c.Position == pos && c.NumCols == nc {
					cell = ms(c.Time)
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = []string{
		"expected shape: small growth with projected-column count (<~5%),",
		"and no effect of position (tokenizing hidden by parallelism)",
	}
	return []*Table{t}
}

// Fig7Cell is one (chunk size, workers) measurement of Fig. 7.
type Fig7Cell struct {
	ChunkLines int
	Workers    int
	Time       time.Duration
}

// Fig7Result is the full Fig. 7 grid.
type Fig7Result struct {
	Cells []Fig7Cell
}

// Fig7Workers is the paper's worker series.
var Fig7Workers = []int{2, 8, 16}

// Fig7ChunkSizes mirrors the paper's 16384..1048576-line sweep scaled to
// the default file (2^15 rows): 2^9..2^13 lines keeps the same
// chunks-per-file range (4..256).
func Fig7ChunkSizes(sc Scale) []int {
	sc = sc.withDefaults()
	var out []int
	for lines := sc.Rows / 256; lines <= sc.Rows/4; lines *= 4 {
		if lines < 1 {
			continue
		}
		out = append(out, lines)
	}
	return out
}

// RunFig7 reproduces Fig. 7 (execution time vs chunk size for several
// worker counts): too-small chunks drown in scheduling overhead,
// too-large chunks limit overlap.
func RunFig7(sc Scale) (*Fig7Result, error) {
	sc = sc.withDefaults()
	diskCfg := CalibrateDisk(sc, 6)
	res := &Fig7Result{}
	for _, lines := range Fig7ChunkSizes(sc) {
		for _, w := range Fig7Workers {
			avg, err := sc.repeat(func() (time.Duration, error) {
				e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
				op := scanraw.New(e.store, e.table, scanraw.Config{
					CPUSlowdown: sc.slowdown(),
					Workers:     w,
					ChunkLines:  lines,
					Policy:      scanraw.ExternalTables,
					CacheChunks: sc.CacheChunks,
				})
				st, err := runSum(op, e, allCols(sc.Cols))
				return st.Duration, err
			})
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Fig7Cell{ChunkLines: lines, Workers: w, Time: avg})
		}
	}
	return res, nil
}

// Tables renders Fig. 7 with chunk sizes as rows and worker counts as
// series.
func (r *Fig7Result) Tables() []*Table {
	t := &Table{
		Title:  "Figure 7: execution time (ms) vs chunk size (lines)",
		Header: []string{"chunk lines"},
	}
	for _, w := range Fig7Workers {
		t.Header = append(t.Header, fmtInt(w)+" workers")
	}
	seen := map[int]bool{}
	for _, c := range r.Cells {
		if seen[c.ChunkLines] {
			continue
		}
		seen[c.ChunkLines] = true
		row := []string{fmtInt(c.ChunkLines)}
		for _, w := range Fig7Workers {
			cell := "-"
			for _, x := range r.Cells {
				if x.ChunkLines == c.ChunkLines && x.Workers == w {
					cell = ms(x.Time)
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = []string{"expected shape: mid-sized chunks are fastest; extremes pay scheduling overhead or lose overlap"}
	return []*Table{t}
}
