package bench

import (
	"time"

	"scanraw/internal/engine"
	"scanraw/internal/gen"
	"scanraw/internal/parse"
	"scanraw/internal/scanraw"
	"scanraw/internal/tok"
)

// Ablations exercise the design choices DESIGN.md calls out, comparing
// each mechanism against its disabled (or alternative) form.

// AblationCacheBiasResult compares the paper's loaded-biased LRU eviction
// against plain LRU over a query sequence with speculative loading.
type AblationCacheBiasResult struct {
	BiasedTimes   []time.Duration
	UnbiasedTimes []time.Duration
	BiasedLoaded  []int
	UnbiasedLoad  []int
}

// RunAblationCacheBias measures whether preferring loaded chunks for
// eviction keeps more useful (unloaded) chunks cached across a sequence.
func RunAblationCacheBias(sc Scale, queries int) (*AblationCacheBiasResult, error) {
	sc = sc.withDefaults()
	if queries <= 0 {
		queries = 4
	}
	diskCfg := CalibrateDisk(sc, 6)
	run := func(unbiased bool) ([]time.Duration, []int, error) {
		e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
		numChunks := (sc.Rows + sc.ChunkLines - 1) / sc.ChunkLines
		op := scanraw.New(e.store, e.table, scanraw.Config{
			CPUSlowdown: sc.slowdown(),
			Workers:     8, ChunkLines: sc.ChunkLines, Policy: scanraw.Speculative,
			CacheChunks: numChunks / 4, Safeguard: true, UnbiasedCache: unbiased,
		})
		var times []time.Duration
		var loaded []int
		for q := 0; q < queries; q++ {
			st, err := runSum(op, e, allCols(sc.Cols))
			if err != nil {
				return nil, nil, err
			}
			op.WaitIdle()
			times = append(times, st.Duration)
			loaded = append(loaded, e.table.CountLoaded(allCols(sc.Cols)))
		}
		return times, loaded, nil
	}
	res := &AblationCacheBiasResult{}
	var err error
	if res.BiasedTimes, res.BiasedLoaded, err = run(false); err != nil {
		return nil, err
	}
	if res.UnbiasedTimes, res.UnbiasedLoad, err = run(true); err != nil {
		return nil, err
	}
	return res, nil
}

// AblationSelectiveResult compares selective conversion (tokenize/parse
// only the query's columns) against full conversion for a narrow query.
type AblationSelectiveResult struct {
	SelectiveTime time.Duration
	FullTime      time.Duration
}

// RunAblationSelective measures the win of selective tokenizing/parsing
// for a query projecting the first 4 of the base column count.
func RunAblationSelective(sc Scale) (*AblationSelectiveResult, error) {
	sc = sc.withDefaults()
	diskCfg := CalibrateDisk(sc, 6)
	measure := func(cols []int) (time.Duration, error) {
		e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
		op := scanraw.New(e.store, e.table, scanraw.Config{
			CPUSlowdown: sc.slowdown(),
			Workers:     2, ChunkLines: sc.ChunkLines, Policy: scanraw.ExternalTables,
			CacheChunks: sc.CacheChunks,
		})
		// Few workers keep the run CPU-bound so conversion cost is
		// visible; the result is checked against ground truth either way.
		st, err := runSum(op, e, cols)
		return st.Duration, err
	}
	res := &AblationSelectiveResult{}
	var err error
	if res.SelectiveTime, err = measure(allCols(4)); err != nil {
		return nil, err
	}
	if res.FullTime, err = measure(allCols(sc.Cols)); err != nil {
		return nil, err
	}
	return res, nil
}

// AblationSafeguardResult compares speculative loading with and without
// the safeguard flush in an I/O-bound run, where the safeguard is the
// only loading mechanism available.
type AblationSafeguardResult struct {
	WithLoaded    []int
	WithoutLoaded []int
}

// RunAblationSafeguard runs an I/O-bound query sequence and reports
// loaded-chunk progress with the safeguard on and off.
func RunAblationSafeguard(sc Scale, queries int) (*AblationSafeguardResult, error) {
	sc = sc.withDefaults()
	if queries <= 0 {
		queries = 3
	}
	diskCfg := CalibrateDisk(sc, 2) // I/O-bound with 8 workers
	run := func(safeguard bool) ([]int, error) {
		e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
		numChunks := (sc.Rows + sc.ChunkLines - 1) / sc.ChunkLines
		op := scanraw.New(e.store, e.table, scanraw.Config{
			CPUSlowdown: sc.slowdown(),
			Workers:     8, ChunkLines: sc.ChunkLines, Policy: scanraw.Speculative,
			CacheChunks: numChunks / 4, Safeguard: safeguard,
		})
		var loaded []int
		for q := 0; q < queries; q++ {
			if _, err := runSum(op, e, allCols(sc.Cols)); err != nil {
				return nil, err
			}
			op.WaitIdle()
			loaded = append(loaded, e.table.CountLoaded(allCols(sc.Cols)))
		}
		return loaded, nil
	}
	res := &AblationSafeguardResult{}
	var err error
	if res.WithLoaded, err = run(true); err != nil {
		return nil, err
	}
	if res.WithoutLoaded, err = run(false); err != nil {
		return nil, err
	}
	return res, nil
}

// AblationStatsResult compares a selective second query with and without
// min/max chunk skipping.
type AblationStatsResult struct {
	WithStatsTime    time.Duration
	WithoutStatsTime time.Duration
	SkippedChunks    int
}

// RunAblationStats runs a two-query sequence where query 2 carries a
// selective predicate: with statistics collected by query 1, chunks whose
// min/max exclude the predicate are skipped without reading.
func RunAblationStats(sc Scale) (*AblationStatsResult, error) {
	sc = sc.withDefaults()
	diskCfg := CalibrateDisk(sc, 6)
	run := func(collect bool) (time.Duration, int, error) {
		e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
		op := scanraw.New(e.store, e.table, scanraw.Config{
			CPUSlowdown: sc.slowdown(),
			Workers:     8, ChunkLines: sc.ChunkLines, Policy: scanraw.ExternalTables,
			CacheChunks: 2, CollectStats: collect,
		})
		// Query 1: full scan (collects stats when enabled).
		if _, err := runSum(op, e, allCols(sc.Cols)); err != nil {
			return 0, 0, err
		}
		// Query 2: highly selective predicate. Values are uniform in
		// [0, 2^31); a tight range excludes nearly every chunk.
		q, err := engine.ParseSQL(
			"SELECT COUNT(*) FROM bench WHERE c0 < 1000", e.table.Schema())
		if err != nil {
			return 0, 0, err
		}
		_, st, err := scanraw.ExecuteQuery(op, q)
		if err != nil {
			return 0, 0, err
		}
		return st.Duration, st.SkippedChunks, nil
	}
	res := &AblationStatsResult{}
	var err error
	if res.WithStatsTime, res.SkippedChunks, err = run(true); err != nil {
		return nil, err
	}
	if res.WithoutStatsTime, _, err = run(false); err != nil {
		return nil, err
	}
	return res, nil
}

// AblationPositionalMapResult compares repeat-query performance with and
// without the positional-map cache, at equal binary-cache size. The paper
// predicts little benefit (§3.1: the map "cannot avoid reading the raw
// file and parsing", which dominate).
type AblationPositionalMapResult struct {
	WithMapTimes    []time.Duration
	WithoutMapTimes []time.Duration
}

// RunAblationPositionalMap measures a 3-query repeat sequence in external
// tables mode (so every query re-reads raw text) with map caching on/off.
func RunAblationPositionalMap(sc Scale, queries int) (*AblationPositionalMapResult, error) {
	sc = sc.withDefaults()
	if queries <= 0 {
		queries = 3
	}
	diskCfg := CalibrateDisk(sc, 6)
	run := func(withMaps bool) ([]time.Duration, error) {
		var times []time.Duration
		for rep := 0; rep < sc.Reps; rep++ {
			e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
			op := scanraw.New(e.store, e.table, scanraw.Config{
				CPUSlowdown: sc.slowdown(),
				Workers:     8, ChunkLines: sc.ChunkLines, CacheChunks: 2,
				Policy:              scanraw.ExternalTables,
				CachePositionalMaps: withMaps,
			})
			for q := 0; q < queries; q++ {
				st, err := runSum(op, e, allCols(sc.Cols))
				if err != nil {
					return nil, err
				}
				if rep == 0 {
					times = append(times, st.Duration)
				} else {
					times[q] += st.Duration
				}
			}
		}
		for i := range times {
			times[i] /= time.Duration(sc.Reps)
		}
		return times, nil
	}
	res := &AblationPositionalMapResult{}
	var err error
	if res.WithMapTimes, err = run(true); err != nil {
		return nil, err
	}
	if res.WithoutMapTimes, err = run(false); err != nil {
		return nil, err
	}
	return res, nil
}

// AblationPushdownResult compares push-down selection in PARSE (convert
// predicate column first, convert the rest only for qualifying tuples)
// against parse-then-filter, at the conversion layer. The paper judges
// push-down not viable once loading is involved; this quantifies the
// single-pass conversion effect in isolation.
type AblationPushdownResult struct {
	PushdownTime time.Duration
	StandardTime time.Duration
	Selectivity  float64
}

// RunAblationPushdown converts a file with a selective predicate two ways
// and reports conversion times.
func RunAblationPushdown(sc Scale) (*AblationPushdownResult, error) {
	sc = sc.withDefaults()
	spec := gen.CSVSpec{Rows: sc.Rows, Cols: sc.Cols, Seed: 2}
	data := gen.Bytes(spec)
	chunks, err := tok.SplitChunks(data, sc.ChunkLines)
	if err != nil {
		return nil, err
	}
	tk := tok.Tokenizer{Delim: ',', MinFields: sc.Cols}
	p := parse.Parser{Schema: spec.Schema()}
	cols := allCols(sc.Cols)
	// Predicate: first column below 1% of the value range.
	pred := func(field []byte) bool {
		x, err := parse.ParseInt(field)
		return err == nil && x < (1<<31)/100
	}

	res := &AblationPushdownResult{}
	kept, total := 0, 0
	pushdown := func() (time.Duration, error) {
		start := time.Now()
		kept, total = 0, 0
		for _, c := range chunks {
			pm, err := tk.Tokenize(c, sc.Cols)
			if err != nil {
				return 0, err
			}
			bc, keep, err := p.ParseWhere(c, pm, cols, 0, pred)
			if err != nil {
				return 0, err
			}
			kept += bc.Rows
			total += c.Lines
			_ = keep
		}
		return time.Since(start), nil
	}
	standard := func() (time.Duration, error) {
		start := time.Now()
		for _, c := range chunks {
			pm, err := tk.Tokenize(c, sc.Cols)
			if err != nil {
				return 0, err
			}
			if _, err := p.Parse(c, pm, cols); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	if res.PushdownTime, err = sc.repeat(pushdown); err != nil {
		return nil, err
	}
	if res.StandardTime, err = sc.repeat(standard); err != nil {
		return nil, err
	}
	if total > 0 {
		res.Selectivity = float64(kept) / float64(total)
	}
	return res, nil
}

// AblationWriteGranularityResult compares the two write granularities the
// system supports: speculative's oldest-unloaded-one-at-a-time writes,
// interleaved with disk-idle windows, versus buffered loading's
// batch-on-eviction writes that contend with READ.
type AblationWriteGranularityResult struct {
	SpeculativeTime   time.Duration
	SpeculativeLoaded int
	BufferedTime      time.Duration
	BufferedLoaded    int
}

// RunAblationWriteGranularity measures the first-query cost of each write
// granularity under a CPU-bound configuration (where writes can hide).
func RunAblationWriteGranularity(sc Scale) (*AblationWriteGranularityResult, error) {
	sc = sc.withDefaults()
	diskCfg := CalibrateDisk(sc, 16) // 8 workers cannot saturate: CPU-bound
	run := func(policy scanraw.WritePolicy) (time.Duration, int, error) {
		e := newEnv(sc, diskCfg, sc.Rows, sc.Cols)
		op := scanraw.New(e.store, e.table, scanraw.Config{
			CPUSlowdown: sc.slowdown(),
			Workers:     8, ChunkLines: sc.ChunkLines, Policy: policy,
			CacheChunks: sc.CacheChunks, Safeguard: true,
		})
		st, err := runSum(op, e, allCols(sc.Cols))
		if err != nil {
			return 0, 0, err
		}
		op.WaitIdle()
		return st.Duration, e.table.CountLoaded(allCols(sc.Cols)), nil
	}
	res := &AblationWriteGranularityResult{}
	var err error
	if res.SpeculativeTime, res.SpeculativeLoaded, err = run(scanraw.Speculative); err != nil {
		return nil, err
	}
	if res.BufferedTime, res.BufferedLoaded, err = run(scanraw.BufferedLoad); err != nil {
		return nil, err
	}
	return res, nil
}
