package bench

import (
	"errors"
	"fmt"
	"io"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/sam"
	"scanraw/internal/scanraw"
	"scanraw/internal/vdisk"
)

// Table1Row is one method's measurement on the genomics workload.
type Table1Row struct {
	Method string
	Time   time.Duration
	Groups int // result rows, for cross-method validation
}

// Table1Result is the paper's Table 1.
type Table1Result struct {
	Rows     []Table1Row
	SAMBytes int64
	BAMBytes int64
}

// table1SQL is the paper's motivating query: the distribution of the
// CIGAR field across reads exhibiting a certain pattern — a group-by
// aggregate with a pattern-matching predicate.
const table1SQL = "SELECT cigar, COUNT(*) AS reads FROM alignments WHERE seq LIKE '%ACGTAC%' GROUP BY cigar"

// RunTable1 reproduces Table 1 (SCANRAW performance on SAM/BAM data):
//
//   - External tables (SAM): parallel SCANRAW over the SAM text
//   - External tables (BAM + BAMTools): the sequential block reader
//     decompresses and decodes; SCANRAW performs only MAP
//   - Data loading (SAM): full query-driven loading plus processing
//   - Database processing: the same query over the loaded table
//   - Speculative loading (SAM): the paper's policy
//
// Every method must produce the identical CIGAR distribution; the result
// is validated across methods. Each method is measured Reps times and the
// average reported.
func RunTable1(sc Scale) (*Table1Result, error) {
	sc = sc.withDefaults()
	diskCfg := CalibrateDisk(sc, 6)
	spec := sam.Spec{Reads: sc.SAMReads, Seed: 3}
	sch := sam.Schema()

	q, err := engine.ParseSQL(table1SQL, sch)
	if err != nil {
		return nil, err
	}

	res := &Table1Result{}
	var wantDist string

	record := func(method string, t time.Duration, r *engine.Result) error {
		dist := r.String()
		if wantDist == "" {
			wantDist = dist
		} else if dist != wantDist {
			return fmt.Errorf("bench: %s produced a different CIGAR distribution", method)
		}
		res.Rows = append(res.Rows, Table1Row{Method: method, Time: t, Groups: len(r.Rows)})
		return nil
	}

	runSAMOnce := func(policy scanraw.WritePolicy) (*scanraw.Operator, *dbstore.Table, time.Duration, *engine.Result, error) {
		d := vdisk.New(diskCfg)
		sam.PreloadSAM(d, "raw/alignments.sam", spec)
		sz, _ := d.Size("raw/alignments.sam")
		res.SAMBytes = sz
		store := dbstore.NewStore(d)
		table, err := store.CreateTable("alignments", sch, "raw/alignments.sam")
		if err != nil {
			return nil, nil, 0, nil, err
		}
		op := scanraw.New(store, table, scanraw.Config{
			CPUSlowdown: sc.slowdown(),
			Workers:     8,
			ChunkLines:  sc.SAMReads / 16,
			Policy:      policy,
			CacheChunks: 4,
			Delim:       '\t',
		})
		r, st, err := scanraw.ExecuteQuery(op, q)
		if err != nil {
			return nil, nil, 0, nil, err
		}
		return op, table, st.Duration, r, nil
	}

	// External tables over SAM text.
	var lastRes *engine.Result
	avg, err := sc.repeat(func() (time.Duration, error) {
		_, _, d, r, err := runSAMOnce(scanraw.ExternalTables)
		lastRes = r
		return d, err
	})
	if err != nil {
		return nil, err
	}
	if err := record("External tables (SAM)", avg, lastRes); err != nil {
		return nil, err
	}

	// External tables over BAM through the sequential BAMTools-style
	// reader: decompression and record decoding are sequential; SCANRAW
	// contributes only the MAP stage and the engine. The decode path must
	// run in the same simulated-CPU units as the pipeline, so its
	// measured CPU time is stretched by the same slowdown factor, paying
	// the debt in coarse sleeps like the worker slots do.
	bamOnce := func() (time.Duration, error) {
		d := vdisk.New(diskCfg)
		if _, err := sam.PreloadBAM(d, "raw/alignments.bam", spec, 2048); err != nil {
			return 0, err
		}
		sz, _ := d.Size("raw/alignments.bam")
		res.BAMBytes = sz
		ex, err := engine.NewExecutor(q, sch)
		if err != nil {
			return 0, err
		}
		cols := q.RequiredColumns()
		start := time.Now()
		br, err := sam.NewBAMReader(d, "raw/alignments.bam")
		if err != nil {
			return 0, err
		}
		var cpuDebt time.Duration
		stretch := time.Duration(sc.slowdown() - 1)
		id := 0
		for {
			reads, err := br.NextBlock()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return 0, err
			}
			mapStart := time.Now()
			bc, err := sam.ReadsToChunk(id, reads, cols)
			if err != nil {
				return 0, err
			}
			if err := ex.Consume(bc); err != nil {
				return 0, err
			}
			cpuDebt += (br.LastBlockCPU() + time.Since(mapStart)) * stretch
			if cpuDebt >= 2*time.Millisecond {
				s := time.Now()
				time.Sleep(cpuDebt)
				cpuDebt -= time.Since(s)
			}
			id++
		}
		r, err := ex.Result()
		if err != nil {
			return 0, err
		}
		lastRes = r
		return time.Since(start), nil
	}
	if avg, err = sc.repeat(bamOnce); err != nil {
		return nil, err
	}
	if err := record("External tables (BAM + BAMTools)", avg, lastRes); err != nil {
		return nil, err
	}

	// Data loading (SAM) and database processing share one operator per
	// repetition: the ETL query loads the table, then the same query runs
	// again as a pure database scan.
	var loadTotal, dbTotal time.Duration
	var loadRes, dbRes *engine.Result
	for rep := 0; rep < sc.Reps; rep++ {
		op, table, d, r, err := runSAMOnce(scanraw.FullLoad)
		if err != nil {
			return nil, err
		}
		if got := table.CountLoaded(q.RequiredColumns()); got != table.NumChunks() {
			return nil, fmt.Errorf("bench: ETL run loaded %d/%d chunks", got, table.NumChunks())
		}
		loadTotal += d
		loadRes = r
		op.Cache().Clear() // measure pure database processing, not cache hits
		r2, st2, err := scanraw.ExecuteQuery(op, q)
		if err != nil {
			return nil, err
		}
		dbTotal += st2.Duration
		dbRes = r2
	}
	if err := record("Data loading (SAM)", loadTotal/time.Duration(sc.Reps), loadRes); err != nil {
		return nil, err
	}
	if err := record("Database processing", dbTotal/time.Duration(sc.Reps), dbRes); err != nil {
		return nil, err
	}

	// Speculative loading (SAM).
	if avg, err = sc.repeat(func() (time.Duration, error) {
		_, _, d, r, err := runSAMOnce(scanraw.Speculative)
		lastRes = r
		return d, err
	}); err != nil {
		return nil, err
	}
	if err := record("Speculative loading (SAM)", avg, lastRes); err != nil {
		return nil, err
	}

	// Extension (not in the paper's table): parallel BAM decoding with a
	// block index — what the paper's "we parallelized MAP without any
	// performance gains" discussion was missing, because the sequential
	// library hid the block boundaries. Workers pace their measured
	// decode CPU by the same slowdown factor as the pipeline.
	if avg, err = sc.repeat(func() (time.Duration, error) {
		d := vdisk.New(diskCfg)
		if _, err := sam.PreloadBAM(d, "raw/alignments.bam", spec, 2048); err != nil {
			return 0, err
		}
		ex, err := engine.NewExecutor(q, sch)
		if err != nil {
			return 0, err
		}
		cols := q.RequiredColumns()
		stretch := time.Duration(sc.slowdown() - 1)
		start := time.Now()
		idx, err := sam.BuildBAMIndex(d, "raw/alignments.bam")
		if err != nil {
			return 0, err
		}
		err = sam.DecodeParallel(d, "raw/alignments.bam", idx, 8,
			func(cpu time.Duration) {
				if stretch > 0 {
					time.Sleep(cpu * stretch)
				}
			},
			func(id int, reads []sam.Read) error {
				bc, err := sam.ReadsToChunk(id, reads, cols)
				if err != nil {
					return err
				}
				return ex.Consume(bc)
			})
		if err != nil {
			return 0, err
		}
		r, err := ex.Result()
		if err != nil {
			return 0, err
		}
		lastRes = r
		return time.Since(start), nil
	}); err != nil {
		return nil, err
	}
	if err := record("BAM + parallel decode [extension]", avg, lastRes); err != nil {
		return nil, err
	}
	return res, nil
}

// Tables renders Table 1.
func (r *Table1Result) Tables() []*Table {
	t := &Table{
		Title:  "Table 1: SCANRAW performance on SAM/BAM data",
		Header: []string{"method", "time (ms)", "CIGAR groups"},
	}
	for _, row := range r.Rows {
		t.Rows = append(t.Rows, []string{row.Method, ms(row.Time), fmtInt(row.Groups)})
	}
	t.Notes = []string{
		fmt.Sprintf("SAM %d bytes, BAM %d bytes (%.1fx smaller)",
			r.SAMBytes, r.BAMBytes, float64(r.SAMBytes)/float64(max64(r.BAMBytes, 1))),
		"expected shape: database processing fastest; BAM+sequential-decoder slowest despite",
		"the smaller file; speculative ~= external tables",
	}
	return []*Table{t}
}

func max64(x, y int64) int64 {
	if x > y {
		return x
	}
	return y
}
