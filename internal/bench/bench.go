// Package bench regenerates every table and figure of the paper's
// experimental evaluation (§5) at laptop scale. Each experiment has a
// typed result plus a text rendering whose rows/series match what the
// paper reports.
//
// Absolute numbers differ from the paper (their substrate is a 16-core
// server with a 4-disk RAID-0; ours is a bandwidth-modelled simulated
// disk), but the shapes are preserved because they depend on ratios the
// harness controls: conversion cost vs I/O cost (the Fig. 4 crossover),
// cache size vs file size (the Fig. 8 convergence), and text vs binary
// size (database processing vs external tables).
//
// Disk calibration: the paper's machine becomes I/O-bound at ~6 workers
// (§5.1). CalibrateDisk measures this host's single-worker conversion
// throughput on the reference 64-column file and sets the simulated disk's
// read bandwidth to 6x that, reproducing the crossover position
// independent of host speed.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"scanraw/internal/chunk"
	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	"scanraw/internal/parse"
	"scanraw/internal/scanraw"
	"scanraw/internal/tok"
	"scanraw/internal/vdisk"
)

// Scale holds the experiment sizing knobs. The zero value is usable: it
// selects sizes that keep the full suite under a few minutes.
type Scale struct {
	// Rows is the base row count for the micro-benchmark files (the paper
	// uses 2^26; default here 2^15).
	Rows int
	// Cols is the base column count (paper: 64).
	Cols int
	// ChunkLines is the lines-per-chunk unit (paper: 2^19; default 2^11,
	// keeping chunks-per-file equal to the paper's 128).
	ChunkLines int
	// CacheChunks is the binary cache capacity in chunks (paper Fig. 8:
	// 32 = 1/4 of the file; default keeps the same 1/4 ratio).
	CacheChunks int
	// SAMReads is the read count for the Table 1 genomics workload.
	SAMReads int
	// DiskMBps overrides calibration with a fixed simulated read
	// bandwidth in MB/s (0 = calibrate, negative = unthrottled).
	DiskMBps int
	// CPUSlowdown stretches conversion tasks by this factor (simulated
	// slow cores), letting worker-count scaling appear on hosts with
	// fewer cores than the paper's 16. 0 = default (16); negative
	// disables the stretch.
	CPUSlowdown int
	// Reps is how many times each measured cell runs; the reported value
	// is the average, following the paper's methodology ("we perform all
	// experiments at least 3 times and report the average"). 0 = default
	// (3); negative = 1.
	Reps int
}

// DefaultScale returns the default experiment sizing.
func DefaultScale() Scale {
	return Scale{
		Rows:        1 << 14,
		Cols:        64,
		ChunkLines:  1 << 8, // 64 chunks per file (paper: 128)
		CacheChunks: 8,      // 1/8 of the file
		SAMReads:    20000,
		CPUSlowdown: 16,
		Reps:        3,
	}
}

func (s Scale) withDefaults() Scale {
	d := DefaultScale()
	if s.Rows <= 0 {
		s.Rows = d.Rows
	}
	if s.Cols <= 0 {
		s.Cols = d.Cols
	}
	if s.ChunkLines <= 0 {
		s.ChunkLines = d.ChunkLines
	}
	if s.CacheChunks <= 0 {
		s.CacheChunks = d.CacheChunks
	}
	if s.SAMReads <= 0 {
		s.SAMReads = d.SAMReads
	}
	if s.CPUSlowdown == 0 {
		s.CPUSlowdown = d.CPUSlowdown
	}
	if s.CPUSlowdown < 1 {
		s.CPUSlowdown = 1
	}
	if s.Reps == 0 {
		s.Reps = 3
	}
	if s.Reps < 1 {
		s.Reps = 1
	}
	return s
}

// repeat runs fn sc.Reps times and returns the average of the durations
// it reports.
func (s Scale) repeat(fn func() (time.Duration, error)) (time.Duration, error) {
	reps := s.Reps
	if reps < 1 {
		reps = 1
	}
	var total time.Duration
	for i := 0; i < reps; i++ {
		d, err := fn()
		if err != nil {
			return 0, err
		}
		total += d
	}
	return total / time.Duration(reps), nil
}

// slowdown returns the effective CPU stretch factor.
func (s Scale) slowdown() int {
	if s.CPUSlowdown < 1 {
		return 1
	}
	return s.CPUSlowdown
}

// CalibrateDisk measures single-worker conversion throughput on a sample
// of the reference file shape and returns a disk configuration whose read
// bandwidth is ioBoundWorkers times that throughput. Write bandwidth is
// half the read bandwidth, reflecting the asymmetry of the paper's
// software-RAID spinning disks — it is what makes explicit loading cost
// real I/O time that speculative loading hides in idle intervals.
//
// The measured conversion rate is cached per column count so every
// experiment in a process shares one consistent machine model.
func CalibrateDisk(sc Scale, ioBoundWorkers int) vdisk.Config {
	sc = sc.withDefaults()
	if sc.DiskMBps < 0 {
		return vdisk.Config{} // unthrottled
	}
	if sc.DiskMBps > 0 {
		bw := int64(sc.DiskMBps) << 20
		return vdisk.Config{ReadBandwidth: bw, WriteBandwidth: bw}
	}
	bytesPerSec := conversionRate(sc.Cols) / float64(sc.slowdown())
	read := int64(bytesPerSec * float64(ioBoundWorkers))
	if read < 1<<20 {
		read = 1 << 20
	}
	return vdisk.Config{ReadBandwidth: read, WriteBandwidth: read / 2}
}

var (
	calMu    sync.Mutex
	calCache = map[int]float64{} // column count -> conversion bytes/sec
)

// conversionRate measures (once per column count) how many raw bytes per
// second one worker tokenizes and parses, without any simulated slowdown.
func conversionRate(cols int) float64 {
	calMu.Lock()
	defer calMu.Unlock()
	if r, ok := calCache[cols]; ok {
		return r
	}
	rows := 2000
	spec := gen.CSVSpec{Rows: rows, Cols: cols, Seed: 7}
	data := gen.Bytes(spec)
	tc := &chunk.TextChunk{ID: 0, Data: data, Lines: rows}
	tk := tok.Tokenizer{Delim: ',', MinFields: cols}
	p := parse.Parser{Schema: spec.Schema()}
	idx := make([]int, cols)
	for i := range idx {
		idx[i] = i
	}
	runtime.GC() // avoid charging a pending collection to the sample
	// On shared hosts, CPU steal varies second to second and a single
	// window can sample a throttled moment, mis-calibrating the whole
	// suite. Take the best of several windows: steal only ever makes a
	// window slower, so the fastest window is the closest to the machine's
	// true rate.
	best := 0.0
	for w := 0; w < 5; w++ {
		start := time.Now()
		iters := 0
		for time.Since(start) < 40*time.Millisecond {
			pm, err := tk.Tokenize(tc, cols)
			if err != nil {
				panic(err)
			}
			if _, err := p.Parse(tc, pm, idx); err != nil {
				panic(err)
			}
			iters++
		}
		if rate := float64(len(data)*iters) / time.Since(start).Seconds(); rate > best {
			best = rate
		}
	}
	calCache[cols] = best
	return best
}

// env bundles the per-experiment world: a fresh simulated disk, store,
// generated file and catalog table.
type env struct {
	disk  *vdisk.Disk
	store *dbstore.Store
	table *dbstore.Table
	spec  gen.CSVSpec
	size  int64
}

func newEnv(sc Scale, diskCfg vdisk.Config, rows, cols int) *env {
	d := vdisk.New(diskCfg)
	spec := gen.CSVSpec{Rows: rows, Cols: cols, Seed: 1}
	size := gen.Preload(d, "raw/bench.csv", spec)
	store := dbstore.NewStore(d)
	table, err := store.CreateTable("bench", spec.Schema(), "raw/bench.csv")
	if err != nil {
		panic(err) // schema generated, cannot fail
	}
	return &env{disk: d, store: store, table: table, spec: spec, size: size}
}

func allCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}

// runSum executes SELECT SUM(c_lo + ... + c_hi) through op and verifies
// the result against the generator's ground truth. It returns the run
// stats.
func runSum(op *scanraw.Operator, e *env, cols []int) (scanraw.RunStats, error) {
	q, err := engine.SumAllColumns(e.table.Schema(), e.table.Name(), cols)
	if err != nil {
		return scanraw.RunStats{}, err
	}
	res, st, err := scanraw.ExecuteQuery(op, q)
	if err != nil {
		return st, err
	}
	want := gen.SumRange(e.spec, cols, 0, e.spec.Rows)
	if got := res.Rows[0][0].Int; got != want {
		return st, fmt.Errorf("bench: result check failed: sum = %d, want %d", got, want)
	}
	return st, nil
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title))); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

func pct(x float64) string { return fmt.Sprintf("%.1f", x) }

func fmtInt(x int) string { return strconv.Itoa(x) }
