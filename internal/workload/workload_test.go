package workload

import (
	"math"
	"sync"
	"testing"
	"time"
)

// fakeClock is a settable time source for deterministic decay.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newFake(ncols int, halfLife time.Duration) (*Tracker, *fakeClock) {
	c := &fakeClock{t: time.Unix(1000, 0)}
	return New(ncols, halfLife).withClock(c.now), c
}

func TestRecordAndWeights(t *testing.T) {
	tr, _ := newFake(4, time.Minute)
	tr.Record([]int{0, 2})
	tr.Record([]int{2})
	w := tr.Weights()
	want := []float64{1, 0, 2, 0}
	for i := range want {
		if w[i] != want[i] {
			t.Errorf("weights[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	if got := tr.Total(); got != 3 {
		t.Errorf("Total = %v, want 3", got)
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	tr, _ := newFake(2, time.Minute)
	tr.Record([]int{-1, 5, 1})
	if w := tr.Weights(); w[0] != 0 || w[1] != 1 {
		t.Errorf("weights = %v", w)
	}
}

func TestExponentialDecay(t *testing.T) {
	tr, clk := newFake(2, time.Minute)
	tr.Record([]int{0})
	clk.advance(time.Minute) // exactly one half-life
	if w := tr.Weights(); math.Abs(w[0]-0.5) > 1e-12 {
		t.Errorf("after one half-life weight = %v, want 0.5", w[0])
	}
	clk.advance(2 * time.Minute) // two more
	if w := tr.Weights(); math.Abs(w[0]-0.125) > 1e-12 {
		t.Errorf("after three half-lives weight = %v, want 0.125", w[0])
	}
}

// TestDecayThenRecord checks new accesses land after decay, not before: the
// fresh access must carry full weight.
func TestDecayThenRecord(t *testing.T) {
	tr, clk := newFake(1, time.Minute)
	tr.Record([]int{0})
	clk.advance(time.Minute)
	tr.Record([]int{0})
	if w := tr.Weights(); math.Abs(w[0]-1.5) > 1e-12 {
		t.Errorf("weight = %v, want 1.5", w[0])
	}
}

func TestSeed(t *testing.T) {
	tr, _ := newFake(3, time.Minute)
	tr.Record([]int{0})
	tr.Seed([]float64{4, 5, 6})
	if w := tr.Weights(); w[0] != 4 || w[1] != 5 || w[2] != 6 {
		t.Errorf("weights after seed = %v", w)
	}
	// Wrong width is ignored.
	tr.Seed([]float64{1})
	if w := tr.Weights(); w[0] != 4 {
		t.Errorf("wrong-width seed applied: %v", w)
	}
}

func TestDefaultHalfLife(t *testing.T) {
	tr := New(1, 0)
	if tr.halfLife != DefaultHalfLife {
		t.Errorf("halfLife = %v, want %v", tr.halfLife, DefaultHalfLife)
	}
}

// TestConcurrentAccess exercises the tracker under the race detector.
func TestConcurrentAccess(t *testing.T) {
	tr := New(8, time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Record([]int{i, (i + 1) % 8})
				_ = tr.Weights()
				_ = tr.Total()
			}
		}(i)
	}
	wg.Wait()
	if tr.Total() <= 0 {
		t.Error("expected positive total after concurrent records")
	}
}
