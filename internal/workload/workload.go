// Package workload tracks which columns of a table queries actually touch.
// The tracker keeps one exponentially-decayed access counter per schema
// ordinal; the speculative loader ranks (chunk, column-group) candidates by
// these weights so idle I/O converts the columns the workload will ask for
// next, and the server persists the weights through the manifest journal so
// a restart does not forget the workload (see "Workload-Driven Vertical
// Partitioning over Raw Data", Zhao/Cheng/Rusu).
package workload

import (
	"math"
	"sync"
	"time"
)

// DefaultHalfLife is how long an access takes to decay to half weight when
// the caller does not choose one. Ten minutes keeps the tracker responsive
// to workload shifts without thrashing on a single odd query.
const DefaultHalfLife = 10 * time.Minute

// Tracker is a per-table set of decayed column-access counters. Safe for
// concurrent use.
type Tracker struct {
	mu       sync.Mutex
	weights  []float64
	halfLife time.Duration
	last     time.Time // instant weights were last decayed to
	now      func() time.Time
}

// New returns a tracker for a table with ncols schema ordinals, decaying
// with the given half-life (<= 0 selects DefaultHalfLife).
func New(ncols int, halfLife time.Duration) *Tracker {
	if halfLife <= 0 {
		halfLife = DefaultHalfLife
	}
	t := &Tracker{
		weights:  make([]float64, ncols),
		halfLife: halfLife,
		now:      time.Now,
	}
	t.last = t.now()
	return t
}

// withClock substitutes the time source; tests use it to make decay
// deterministic.
func (t *Tracker) withClock(now func() time.Time) *Tracker {
	t.now = now
	t.last = now()
	return t
}

// decayLocked folds elapsed time into the weights. Decay is lazy: weights
// only change when someone looks at or touches them, so an idle tracker
// costs nothing.
func (t *Tracker) decayLocked() {
	now := t.now()
	dt := now.Sub(t.last)
	if dt <= 0 {
		return
	}
	t.last = now
	f := math.Exp2(-float64(dt) / float64(t.halfLife))
	for i := range t.weights {
		t.weights[i] *= f
	}
}

// Record counts one access to each listed column ordinal. Out-of-range
// ordinals are ignored — the schema is the tracker's, not the caller's.
func (t *Tracker) Record(cols []int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decayLocked()
	for _, c := range cols {
		if c >= 0 && c < len(t.weights) {
			t.weights[c]++
		}
	}
}

// Weights returns a copy of the current decayed weights, indexed by schema
// ordinal.
func (t *Tracker) Weights() []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decayLocked()
	return append([]float64(nil), t.weights...)
}

// Total returns the sum of all current weights. Zero means the tracker is
// cold — no query has touched the table recently — and the speculation
// policy should fall back to scan order.
func (t *Tracker) Total() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.decayLocked()
	sum := 0.0
	for _, w := range t.weights {
		sum += w
	}
	return sum
}

// Seed overwrites the weights with a persisted snapshot (typically the
// RecWorkload record recovered from the manifest). A snapshot of the wrong
// width is ignored.
func (t *Tracker) Seed(weights []float64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(weights) != len(t.weights) {
		return
	}
	t.last = t.now()
	copy(t.weights, weights)
}
