package scanraw_test

import (
	"fmt"

	"scanraw"
)

// The canonical workflow: stage raw bytes, query instantly, and let
// speculative loading migrate data into the database as queries run.
func Example() {
	db := scanraw.Open(scanraw.Options{})
	raw := []byte("1,north,250\n2,south,175\n3,north,310\n4,west,90\n")
	if err := db.Stage("sales", "id:int, region:string, amount:int", scanraw.CSV, raw); err != nil {
		panic(err)
	}
	res, _, err := db.Exec("SELECT region, SUM(amount) AS revenue FROM sales GROUP BY region ORDER BY revenue DESC")
	if err != nil {
		panic(err)
	}
	fmt.Print(res)
	// Output:
	// region  revenue
	// north   560
	// south   175
	// west    90
}

// Aggregates over a filtered scan.
func ExampleDB_Exec() {
	db := scanraw.Open(scanraw.Options{})
	raw := []byte("10\n20\n30\n40\n")
	if err := db.Stage("nums", "n:int", scanraw.CSV, raw); err != nil {
		panic(err)
	}
	res, _, err := db.Exec("SELECT COUNT(*) AS big, SUM(n) AS total FROM nums WHERE n >= 20")
	if err != nil {
		panic(err)
	}
	fmt.Print(res)
	// Output:
	// big  total
	// 3    90
}

// ParseSchema turns a compact spec into a relation schema.
func ExampleParseSchema() {
	sch, err := scanraw.ParseSchema("ts:int, name:string, score:float")
	if err != nil {
		panic(err)
	}
	fmt.Println(sch)
	// Output:
	// (ts BIGINT, name VARCHAR, score DOUBLE)
}
