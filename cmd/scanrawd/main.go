// Command scanrawd runs the SCANRAW query-serving daemon: an HTTP server
// that executes SQL in-situ over raw delimited files, coalescing
// concurrent queries against the same file into shared scans and loading
// data speculatively as queries run.
//
// Usage:
//
//	scanrawd -file data.csv -schema 'c0:int,c1:int' -addr :8080 \
//	         -policy speculative -workers 8
//
// Several files can be served at once by repeating -file with name=path
// pairs and matching name=spec schemas:
//
//	scanrawd -file a=a.csv -schema 'a=x:int,y:int' \
//	         -file b=b.tsv -schema 'b=u:int,v:string' -tsv b
//
// Endpoints:
//
//	POST /query    {"sql": "SELECT ...", "timeout_ms": 5000}
//	               → {"columns": [...], "rows": [[...]], "stats": {...}}
//	               add ?stream=ndjson for newline-delimited row streaming
//	GET  /metrics  live worker/disk utilization + serving counters
//	GET  /tables   catalog and loading progress per table
//	GET  /healthz  liveness + readiness (503 while draining)
//	POST /exec     coordinator-assigned shard execution (binary frames)
//
// Queries against the same file arriving within the coalescing window
// (-coalesce) share one physical scan. Queries beyond -max-concurrent are
// rejected with 429. Client disconnects and timeouts cancel the pipeline.
//
// With -coordinator the daemon serves no local data: it scatters each
// /query to the workers named in the -fleet config (each owning a chunk
// range of every table), merges their partial results through the engine
// merge tree, and degrades gracefully — per-peer timeouts, one bounded
// retry round with replica failover, and explicit partial results when a
// shard has no live peer. The coordinator exposes the same /query wire
// as a single scanrawd plus GET /fleet; see DESIGN.md §11 and
// examples/fleet.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"scanraw/internal/cluster"
	"scanraw/internal/dbstore"
	"scanraw/internal/sam"
	"scanraw/internal/scanraw"
	"scanraw/internal/schema"
	"scanraw/internal/server"
	storepkg "scanraw/internal/store"
	"scanraw/internal/vdisk"
)

// multiFlag collects repeated flag values.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func parseSchema(spec string) (*schema.Schema, error) {
	var cols []schema.Column
	for _, part := range strings.Split(spec, ",") {
		name, tyName, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema entry %q is not name:type", part)
		}
		ty, err := schema.ParseType(tyName)
		if err != nil {
			return nil, err
		}
		cols = append(cols, schema.Column{Name: strings.TrimSpace(name), Type: ty})
	}
	return schema.New(cols...)
}

func parsePolicy(s string) (scanraw.WritePolicy, error) {
	switch s {
	case "external":
		return scanraw.ExternalTables, nil
	case "fullload", "load":
		return scanraw.FullLoad, nil
	case "buffered":
		return scanraw.BufferedLoad, nil
	case "speculative":
		return scanraw.Speculative, nil
	case "invisible":
		return scanraw.Invisible, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (external, fullload, buffered, speculative, invisible)", s)
	}
}

// splitNamed splits "name=value" flags; a bare value gets the default
// name "data" (single-table usage needs no names).
func splitNamed(v string) (name, value string) {
	if n, rest, ok := strings.Cut(v, "="); ok {
		return n, rest
	}
	return "data", v
}

// runCoordinator serves the scatter-gather front end: no local tables,
// queries fan out to the fleet's workers and merge through the engine.
// The fleet description comes from -fleet (and is recorded alongside the
// durable catalog when -data-dir is set) or, on restart, from the record
// a previous run saved.
func runCoordinator(addr, fleetFile, dataDir string, cfg cluster.Config) {
	var store *dbstore.Store
	if dataDir != "" {
		fd, err := storepkg.OpenFileDisk(filepath.Join(dataDir, "blobs"))
		if err != nil {
			log.Fatalf("scanrawd: %v", err)
		}
		store = dbstore.NewStore(fd)
	}
	var data []byte
	switch {
	case fleetFile != "":
		raw, err := os.ReadFile(fleetFile)
		if err != nil {
			log.Fatalf("scanrawd: %v", err)
		}
		data = raw
	case store != nil:
		raw, ok, err := store.LoadFleetConfig()
		if err != nil {
			log.Fatalf("scanrawd: %v", err)
		}
		if !ok {
			log.Fatalf("scanrawd: -coordinator needs -fleet (no recorded fleet config under %s)", dataDir)
		}
		log.Printf("fleet config recovered from %s", dataDir)
		data = raw
	default:
		log.Fatalf("scanrawd: -coordinator needs -fleet <config.json>")
	}
	fleet, err := cluster.ParseFleet(data)
	if err != nil {
		log.Fatalf("scanrawd: %v", err)
	}
	if store != nil && fleetFile != "" {
		if err := store.SaveFleetConfig(data); err != nil {
			log.Fatalf("scanrawd: recording fleet config: %v", err)
		}
	}
	co := cluster.NewCoordinator(fleet, cfg)
	defer co.Close()

	httpSrv := &http.Server{Addr: addr, Handler: co.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("scanrawd coordinating %d peer(s), %d table(s) on %s",
		len(fleet.PeerAddrs()), len(fleet.Tables()), addr)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("scanrawd: %v", err)
		}
	case <-ctx.Done():
		log.Printf("scanrawd: coordinator shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("scanrawd: http shutdown: %v", err)
		}
		<-serveErr
	}
}

func main() {
	var (
		files      multiFlag
		schemas    multiFlag
		tsvTables  multiFlag
		samTables  multiFlag
		addr       = flag.String("addr", ":8080", "listen address")
		policyStr  = flag.String("policy", "speculative", "write policy")
		workers    = flag.Int("workers", 8, "worker threads per operator (0 = sequential)")
		adaptive   = flag.Bool("adaptive", false, "resize worker pools between queries from utilization feedback")
		consumeW   = flag.Int("consume-workers", 1, "consume goroutines per query (parallel evaluation)")
		chunkLines = flag.Int("chunk", 1<<13, "lines per chunk")
		cacheSz    = flag.Int("cache", 32, "binary cache capacity in chunks")
		diskMBps   = flag.Int("disk", 0, "simulated disk bandwidth in MB/s (0 = unthrottled)")
		dataDir    = flag.String("data-dir", "", "persist loaded data and catalog under this directory (empty = in-memory only)")
		stats      = flag.Bool("stats", true, "collect min/max statistics while converting")
		fused      = flag.Bool("fused", true, "use fused per-schema conversion kernels (one-pass tokenize+parse)")
		colGroups  = flag.Int("colgroups", 1, "column-group width for database pages (1 = per-column, 0 = full chunk width)")
		specPolicy = flag.String("spec-policy", "payoff", "speculative loading order: payoff (workload-ranked) or scan (file order)")
		maxConc    = flag.Int("max-concurrent", 32, "admission slots: queries in flight before 429")
		olaErr     = flag.Float64("ola-error", 0, "online aggregation default: run eligible aggregates as sampled scans stopping at this relative error (0 = only on explicit ?error=)")
		olaConf    = flag.Float64("ola-confidence", 0.95, "online aggregation: default confidence level for error bounds")
		coalesce   = flag.Duration("coalesce", 2*time.Millisecond, "coalescing window for shared scans (negative disables)")
		timeout    = flag.Duration("timeout", 0, "default per-query timeout (0 = none)")

		coordinator  = flag.Bool("coordinator", false, "run as fleet coordinator: scatter queries to workers, merge partials (no local data)")
		fleetFile    = flag.String("fleet", "", "fleet config JSON (peers + table ownership); with -data-dir it is recorded durably and becomes optional on restart")
		peerTimeout  = flag.Duration("peer-timeout", 30*time.Second, "coordinator: per-peer exec attempt deadline")
		retryBackoff = flag.Duration("retry-backoff", 50*time.Millisecond, "coordinator: backoff before a shard retry")
		healthEvery  = flag.Duration("health-interval", 2*time.Second, "coordinator: /healthz probe period (negative disables)")
	)
	flag.Var(&files, "file", "raw file to serve, as path or name=path (repeatable)")
	flag.Var(&schemas, "schema", "schema as 'name:type,...' or table=spec (repeatable)")
	flag.Var(&tsvTables, "tsv", "table name whose file is tab-delimited (repeatable)")
	flag.Var(&samTables, "sam", "table name using the SAM schema + tab delimiter (repeatable)")
	flag.Parse()

	if *coordinator {
		runCoordinator(*addr, *fleetFile, *dataDir, cluster.Config{
			PeerTimeout:    *peerTimeout,
			RetryBackoff:   *retryBackoff,
			HealthInterval: *healthEvery,
			DefaultTimeout: *timeout,
		})
		return
	}
	if len(files) == 0 {
		fmt.Fprintln(os.Stderr, "usage: scanrawd -file <raw file> -schema <spec> [-addr :8080] ...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	policy, err := parsePolicy(*policyStr)
	if err != nil {
		log.Fatalf("scanrawd: %v", err)
	}
	spec, err := scanraw.ParseSpecPolicy(*specPolicy)
	if err != nil {
		log.Fatalf("scanrawd: %v", err)
	}

	schemaByTable := make(map[string]string)
	for _, s := range schemas {
		name, spec := splitNamed(s)
		schemaByTable[name] = spec
	}
	isTSV := make(map[string]bool)
	for _, n := range tsvTables {
		isTSV[n] = true
	}
	isSAM := make(map[string]bool)
	for _, n := range samTables {
		isSAM[n] = true
	}

	var diskCfg vdisk.Config
	if *diskMBps > 0 {
		diskCfg.ReadBandwidth = int64(*diskMBps) << 20
		diskCfg.WriteBandwidth = int64(*diskMBps) << 20
	}

	// Storage assembly. Without -data-dir everything lives in memory (the
	// simulated disk). With it, blobs go to fsynced files and the catalog is
	// journaled to a manifest, so loaded chunks survive restarts; a non-zero
	// -disk throttle wraps the file backend in the same bandwidth model.
	var (
		disk  storepkg.Disk
		man   *storepkg.Manifest
		store *dbstore.Store
	)
	if *dataDir == "" {
		disk = vdisk.New(diskCfg)
		store = dbstore.NewStore(disk)
	} else {
		fd, err := storepkg.OpenFileDisk(filepath.Join(*dataDir, "blobs"))
		if err != nil {
			log.Fatalf("scanrawd: %v", err)
		}
		if *diskMBps > 0 {
			disk = vdisk.NewBacked(diskCfg, fd)
		} else {
			disk = fd
		}
		if man, err = storepkg.OpenManifest(*dataDir); err != nil {
			log.Fatalf("scanrawd: %v", err)
		}
		if store, err = dbstore.OpenDurable(disk, man); err != nil {
			log.Fatalf("scanrawd: %v", err)
		}
		rec := store.RecoveryStats()
		log.Printf("recovered %d table(s) from %s: %d chunk(s) warm, %d invalidated, %d torn log byte(s), %dms",
			rec.TablesRecovered, *dataDir, rec.ChunksRecovered, rec.ChunksInvalidated,
			rec.Replay.TornBytes, rec.RecoveryMS)
	}
	store.SetGroupWidth(*colGroups)
	srv := server.New(store, server.Config{
		MaxConcurrent:  *maxConc,
		CoalesceWindow: *coalesce,
		DefaultTimeout: *timeout,
		OLAError:       *olaErr,
		OLAConfidence:  *olaConf,
	})

	for _, f := range files {
		name, path := splitNamed(f)
		raw, err := os.ReadFile(path)
		if err != nil {
			log.Fatalf("scanrawd: %v", err)
		}
		var sch *schema.Schema
		delim := byte(',')
		switch {
		case isSAM[name]:
			sch, delim = sam.Schema(), '\t'
		default:
			spec, ok := schemaByTable[name]
			if !ok {
				log.Fatalf("scanrawd: no -schema for table %q", name)
			}
			if sch, err = parseSchema(spec); err != nil {
				log.Fatalf("scanrawd: table %q: %v", name, err)
			}
			if isTSV[name] {
				delim = '\t'
			}
		}
		blob := "raw/" + name
		disk.Preload(blob, raw)
		var table *dbstore.Table
		if man != nil {
			// Durable store: stage with the raw file's fingerprint so a
			// restart keeps persisted chunks only while the file's contents
			// are unchanged.
			fp := storepkg.FingerprintBytes(raw)
			if fi, err := os.Stat(path); err == nil {
				fp.ModTimeNs = fi.ModTime().UnixNano()
			}
			table, err = store.EnsureTable(name, sch, blob, fp)
		} else {
			table, err = store.CreateTable(name, sch, blob)
		}
		if err != nil {
			log.Fatalf("scanrawd: %v", err)
		}
		tblCfg := scanraw.Config{
			Workers:         *workers,
			AdaptiveWorkers: *adaptive,
			ChunkLines:      *chunkLines,
			CacheChunks:     *cacheSz,
			Policy:          policy,
			Safeguard:       true,
			Delim:           delim,
			CollectStats:    *stats,
			ConsumeWorkers:  *consumeW,
			Speculation:     spec,
		}
		if !*fused {
			tblCfg.FusedKernels = scanraw.FusedOff
		}
		if err := srv.AddTable(table, tblCfg); err != nil {
			log.Fatalf("scanrawd: %v", err)
		}
		log.Printf("serving table %q (%d bytes, schema %s)", name, len(raw), sch)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("scanrawd listening on %s (policy %s, %d slots, %v coalescing window)",
		*addr, policy, *maxConc, *coalesce)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("scanrawd: %v", err)
		}
	case <-ctx.Done():
		// Graceful shutdown: stop accepting connections, drain in-flight
		// queries and background speculative writes, checkpoint the catalog,
		// and only then close the manifest — main waits for all of it.
		log.Printf("scanrawd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("scanrawd: http shutdown: %v", err)
		}
		<-serveErr
		if err := srv.Drain(shutdownCtx); err != nil {
			log.Printf("scanrawd: drain: %v", err)
		}
		if man != nil {
			if err := man.Close(); err != nil {
				log.Printf("scanrawd: closing manifest: %v", err)
			}
		}
		log.Printf("scanrawd: shutdown complete")
	}
}
