// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [flags] [experiment ...]
//
// With no arguments every paper experiment runs in order. Experiment names
// are fig4, fig5, fig6, fig7, fig8, fig9 and table1; "ablations" runs the
// DESIGN.md design-choice studies.
//
// Flags scale the workloads; the defaults finish in a few minutes:
//
//	-rows N        base row count for the synthetic files (default 32768)
//	-cols N        base column count (default 64)
//	-chunk N       lines per chunk (default 2048)
//	-cache N       binary cache capacity in chunks (default 8)
//	-samreads N    reads in the genomics workload (default 20000)
//	-disk MBps     fixed simulated disk bandwidth; 0 calibrates to the
//	               host so the I/O-bound crossover lands at 6 workers
package main

import (
	"flag"
	"fmt"
	"os"

	"scanraw/internal/bench"
)

func main() {
	var sc bench.Scale
	flag.IntVar(&sc.Rows, "rows", 0, "base row count (0 = default)")
	flag.IntVar(&sc.Cols, "cols", 0, "base column count (0 = default)")
	flag.IntVar(&sc.ChunkLines, "chunk", 0, "lines per chunk (0 = default)")
	flag.IntVar(&sc.CacheChunks, "cache", 0, "binary cache capacity in chunks (0 = default)")
	flag.IntVar(&sc.SAMReads, "samreads", 0, "genomics workload reads (0 = default)")
	flag.IntVar(&sc.DiskMBps, "disk", 0, "simulated disk MB/s (0 = calibrate, <0 = unthrottled)")
	flag.IntVar(&sc.CPUSlowdown, "cpuslow", 0, "simulated CPU slowdown factor (0 = default 16, <0 = off)")
	flag.Parse()

	exps := bench.AllExperiments
	if args := flag.Args(); len(args) > 0 {
		exps = exps[:0]
		for _, a := range args {
			exps = append(exps, bench.Experiment(a))
		}
	}
	for _, exp := range exps {
		fmt.Printf("--- running %s ---\n", exp)
		if err := bench.Run(exp, sc, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", exp, err)
			os.Exit(1)
		}
	}
}
