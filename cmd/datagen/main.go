// Command datagen materializes the synthetic datasets used throughout the
// repository as ordinary files, so they can be inspected or fed to the
// scanraw CLI.
//
// Usage:
//
//	datagen -kind csv -rows 65536 -cols 64 -out data.csv
//	datagen -kind sam -reads 100000 -out alignments.sam
//	datagen -kind bam -reads 100000 -out alignments.bam
package main

import (
	"flag"
	"fmt"
	"os"

	"scanraw/internal/gen"
	"scanraw/internal/sam"
)

func main() {
	var (
		kind  = flag.String("kind", "csv", "dataset kind: csv, sam, or bam")
		rows  = flag.Int("rows", 1<<16, "csv: number of rows")
		cols  = flag.Int("cols", 64, "csv: number of columns")
		reads = flag.Int("reads", 100000, "sam/bam: number of alignment reads")
		seed  = flag.Uint64("seed", 1, "pseudo-random seed")
		delim = flag.String("delim", ",", "csv: field delimiter")
		out   = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}

	var data []byte
	var err error
	switch *kind {
	case "csv":
		if len(*delim) != 1 {
			fmt.Fprintln(os.Stderr, "datagen: -delim must be a single byte")
			os.Exit(2)
		}
		data = gen.Bytes(gen.CSVSpec{
			Rows: *rows, Cols: *cols, Seed: *seed, Delim: (*delim)[0],
		})
	case "sam":
		data = sam.SAMBytes(sam.Spec{Reads: *reads, Seed: *seed})
	case "bam":
		data, err = sam.BAMBytes(sam.Spec{Reads: *reads, Seed: *seed}, 4096)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d bytes)\n", *out, len(data))
}
