// Command scanrawlint runs scanraw's project-specific static analyzers —
// the concurrency, resource-lifecycle, and durability invariants go vet and
// the race detector cannot check:
//
//	pinbalance    cache pins matched by Unpin on all paths
//	poolpair      pooled vectors/positional maps reach a recycle call
//	goexit        go func literals can observe shutdown or are finite
//	ctxflow       exported ctx-taking functions thread their context
//	locksend      no channel ops while holding a mutex
//	journalorder  loaded-record journal appends dominated by the blob write
//	syncack       no nil-error ack after a write without an fsync between
//	decodeguard   wire-decoded counts bounds-checked before make()
//	crcflow       CRC-verifying decode errors never discarded or shadowed
//	lockorder     lock-acquisition graph acyclic; no chan ops under 2 locks
//
// Usage:
//
//	scanrawlint [-tests] [-only name,name] [packages]
//
// Packages default to ./... relative to the current directory. Findings
// print as file:line:col: [analyzer] message; the exit status is 1 when
// any finding survives. Suppress a false positive inline, with a reason:
//
//	//lint:ignore pinbalance pin is transferred to the write queue
//
// A directive that suppresses nothing is itself reported (the
// unused-suppression pass), so stale ignores cannot rot in place.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scanraw/internal/lint"
)

func main() {
	tests := flag.Bool("tests", false, "lint _test.go files too")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for n := range want {
			fmt.Fprintf(os.Stderr, "scanrawlint: unknown analyzer %q\n", n)
			os.Exit(2)
		}
		analyzers = sel
	}

	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanrawlint: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.Config{Root: root, IncludeTests: *tests}, flag.Args(), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanrawlint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scanrawlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
