// Command scanraw executes SQL queries in-situ over a raw delimited file
// through the SCANRAW operator, optionally loading data speculatively as
// queries run.
//
// Usage:
//
//	scanraw -file data.csv -schema 'c0:int,c1:int' \
//	        -policy speculative -workers 8 \
//	        'SELECT SUM(c0+c1) FROM data' 'SELECT COUNT(*) FROM data WHERE c0 < 100'
//
// The file is staged onto a simulated disk (bandwidth set by -disk) so the
// loading behaviour of the operator is observable; per-query statistics
// are printed after each result. Running several queries demonstrates
// gradual loading: later queries are served from the cache and the
// database instead of re-parsing the raw file.
//
// Schema entries are name:type pairs where type is one of int, float, and
// string. With -sam the 11-column SAM schema and tab delimiter are used.
// With -repl an interactive shell reads queries from stdin (meta commands:
// \schema, \loaded, \q).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/ola"
	"scanraw/internal/sam"
	"scanraw/internal/scanraw"
	"scanraw/internal/schema"
	"scanraw/internal/vdisk"
)

func parseSchema(spec string) (*schema.Schema, error) {
	var cols []schema.Column
	for _, part := range strings.Split(spec, ",") {
		name, tyName, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema entry %q is not name:type", part)
		}
		ty, err := schema.ParseType(tyName)
		if err != nil {
			return nil, err
		}
		cols = append(cols, schema.Column{Name: name, Type: ty})
	}
	return schema.New(cols...)
}

func parsePolicy(s string) (scanraw.WritePolicy, error) {
	switch s {
	case "external":
		return scanraw.ExternalTables, nil
	case "fullload", "load":
		return scanraw.FullLoad, nil
	case "buffered":
		return scanraw.BufferedLoad, nil
	case "speculative":
		return scanraw.Speculative, nil
	case "invisible":
		return scanraw.Invisible, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (external, fullload, buffered, speculative, invisible)", s)
	}
}

func main() {
	var (
		file      = flag.String("file", "", "raw file to query (required)")
		schemaStr = flag.String("schema", "", "schema as name:type[,name:type...]")
		samMode   = flag.Bool("sam", false, "use the SAM schema and tab delimiter")
		policyStr = flag.String("policy", "speculative", "write policy")
		workers   = flag.Int("workers", 8, "worker threads (0 = sequential)")
		adaptive  = flag.Bool("adaptive", false, "resize the worker pool between queries from utilization feedback")
		consumeW  = flag.Int("consume-workers", 1, "consume goroutines per query (parallel evaluation)")
		chunk     = flag.Int("chunk", 1<<13, "lines per chunk")
		cacheSz   = flag.Int("cache", 32, "binary cache capacity in chunks")
		colGroups = flag.Int("colgroups", 1, "column-group width for database pages (1 = per-column, 0 = full chunk width)")
		specStr   = flag.String("spec-policy", "payoff", "speculative loading order: payoff (workload-ranked) or scan (file order)")
		diskMBps  = flag.Int("disk", 400, "simulated disk bandwidth in MB/s (0 = unthrottled)")
		delim     = flag.String("delim", ",", "field delimiter")
		stats     = flag.Bool("stats", true, "collect min/max statistics while converting")
		fused     = flag.Bool("fused", true, "use fused per-schema conversion kernels (one-pass tokenize+parse)")
		repl      = flag.Bool("repl", false, "read queries interactively from stdin")
		timeout   = flag.Duration("timeout", 0, "per-query timeout; cancels the scan when exceeded (0 = none)")
		olaErr    = flag.Float64("ola-error", -1, "online aggregation: stop when the relative confidence bound falls below this fraction (0 = sampled full scan, negative = off)")
		olaConf   = flag.Float64("ola-confidence", 0.95, "online aggregation: confidence level for the error bounds")
		olaSeed   = flag.Int64("ola-seed", 1, "online aggregation: chunk-permutation seed")
	)
	flag.Parse()
	if *file == "" || (flag.NArg() == 0 && !*repl) {
		fmt.Fprintln(os.Stderr, "usage: scanraw -file <raw file> [-schema ...] 'SELECT ...' [...]")
		fmt.Fprintln(os.Stderr, "       scanraw -file <raw file> [-schema ...] -repl")
		os.Exit(2)
	}

	sch, delimByte, err := resolveSchema(*schemaStr, *samMode, *delim)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanraw: %v\n", err)
		os.Exit(2)
	}
	policy, err := parsePolicy(*policyStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanraw: %v\n", err)
		os.Exit(2)
	}
	spec, err := scanraw.ParseSpecPolicy(*specStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanraw: %v\n", err)
		os.Exit(2)
	}

	data, err := os.ReadFile(*file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanraw: %v\n", err)
		os.Exit(1)
	}
	var cfg vdisk.Config
	if *diskMBps > 0 {
		cfg.ReadBandwidth = int64(*diskMBps) << 20
		cfg.WriteBandwidth = int64(*diskMBps) << 20
	}
	disk := vdisk.New(cfg)
	disk.Preload("raw/input", data)
	store := dbstore.NewStore(disk)
	store.SetGroupWidth(*colGroups)
	table, err := store.CreateTable("data", sch, "raw/input")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanraw: %v\n", err)
		os.Exit(1)
	}

	reg := scanraw.NewRegistry(store)
	opCfg := scanraw.Config{
		Workers:         *workers,
		AdaptiveWorkers: *adaptive,
		ChunkLines:      *chunk,
		CacheChunks:     *cacheSz,
		Policy:          policy,
		Safeguard:       true,
		Delim:           delimByte,
		CollectStats:    *stats,
		ConsumeWorkers:  *consumeW,
		Speculation:     spec,
	}
	if !*fused {
		opCfg.FusedKernels = scanraw.FusedOff
	}
	runOne := func(sql string) error {
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if *olaErr >= 0 {
			return runOLA(ctx, reg.Operator(table, opCfg), sql,
				ola.Config{Tolerance: *olaErr, Confidence: *olaConf}, *olaSeed)
		}
		res, st, err := reg.ExecuteSQLContext(ctx, table, opCfg, sql)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			return fmt.Errorf("query timed out after %v: %s", *timeout, sql)
		case errors.Is(err, context.Canceled):
			return fmt.Errorf("query cancelled: %s", sql)
		case err != nil:
			return err
		}
		fmt.Printf("> %s\n%s", sql, res)
		early := ""
		if st.TerminatedEarly {
			early = fmt.Sprintf("; terminated early, saved %d chunks", st.ChunksSaved)
		}
		fmt.Printf("[%.1f ms; chunks: %d cache, %d db, %d raw, %d skipped; loaded %d during run, %d queued; disk %s read, %s written%s]\n\n",
			float64(st.Duration.Microseconds())/1000,
			st.DeliveredCache, st.DeliveredDB, st.DeliveredRaw, st.SkippedChunks,
			st.WrittenDuringRun, st.FlushedAfterRun,
			mb(st.DiskReadBytes), mb(st.DiskWriteBytes), early)
		return nil
	}

	for _, sql := range flag.Args() {
		if err := runOne(sql); err != nil {
			fmt.Fprintf(os.Stderr, "scanraw: %v\n", err)
			os.Exit(1)
		}
	}
	if *repl {
		runREPL(table, runOne)
	}
}

// runOLA executes one query through the online-aggregation path: a
// seeded sampled scan printing converging estimates as the bounds
// shrink, then the final answer (exact if the scan ran to completion).
func runOLA(ctx context.Context, op *scanraw.Operator, sql string, cfg ola.Config, seed int64) error {
	q, err := engine.ParseSQL(sql, op.Table().Schema())
	if err != nil {
		return err
	}
	if err := ola.Eligible(q); err != nil {
		return fmt.Errorf("online aggregation: %v", err)
	}
	fmt.Printf("> %s\n", sql)
	lastRel := math.Inf(1)
	res, runner, st, err := ola.Run(ctx, op, q, cfg, seed, func(s ola.Snapshot) {
		if !(s.MaxRel < lastRel) {
			return
		}
		lastRel = s.MaxRel
		for _, g := range s.Groups {
			fmt.Printf("  ~ %s  (±%s; %d/%d chunks, max rel err %.4f)\n",
				fmtValues(g.Values), fmtBounds(g.Bounds), s.Chunks, s.Total, s.MaxRel)
		}
	})
	if err != nil {
		return err
	}
	fmt.Print(res)
	last := runner.LastSnapshot()
	kind := "estimate"
	if runner.Exact() {
		kind = "exact (full scan)"
	}
	fmt.Printf("[%s; sampled %d/%d chunks; max rel err %.4f; %.1f ms; terminated early: %v]\n\n",
		kind, last.Chunks, last.Total, last.MaxRel,
		float64(st.Duration.Microseconds())/1000, st.TerminatedEarly)
	return nil
}

func fmtValues(vals []engine.Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.String()
	}
	return strings.Join(parts, ", ")
}

func fmtBounds(bounds []float64) string {
	parts := make([]string, len(bounds))
	for i, b := range bounds {
		parts[i] = fmt.Sprintf("%.1f", b)
	}
	return strings.Join(parts, ", ")
}

// runREPL reads queries from stdin, one per line. Meta commands: \schema
// prints the table schema, \loaded the loading progress, \q quits.
func runREPL(table *dbstore.Table, runOne func(string) error) {
	fmt.Println(`scanraw interactive shell — SQL per line; \schema, \loaded, \q`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("scanraw> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\q` || line == "exit" || line == "quit":
			return
		case line == `\schema`:
			fmt.Printf("%s %s\n", table.Name(), table.Schema())
		case line == `\loaded`:
			all := make([]int, table.Schema().NumColumns())
			for i := range all {
				all[i] = i
			}
			fmt.Printf("chunks with every column loaded: %d/%d (discovery complete: %v)\n",
				table.CountLoaded(all), table.NumChunks(), table.Complete())
		default:
			if err := runOne(line); err != nil {
				fmt.Fprintf(os.Stderr, "error: %v\n", err)
			}
		}
	}
}

func mb(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func resolveSchema(schemaStr string, samMode bool, delim string) (*schema.Schema, byte, error) {
	if samMode {
		return sam.Schema(), '\t', nil
	}
	if schemaStr == "" {
		return nil, 0, fmt.Errorf("either -schema or -sam is required")
	}
	if len(delim) != 1 {
		return nil, 0, fmt.Errorf("-delim must be a single byte")
	}
	sch, err := parseSchema(schemaStr)
	if err != nil {
		return nil, 0, err
	}
	return sch, delim[0], nil
}
