// Package scanraw is a Go implementation of SCANRAW — the parallel in-situ
// data-processing operator with speculative loading from Cheng & Rusu,
// "Parallel In-Situ Data Processing with Speculative Loading" (SIGMOD
// 2014).
//
// SCANRAW lets you run SQL over raw delimited files with zero
// time-to-query: the first query streams the file through a super-scalar
// TOKENIZE/PARSE pipeline, and — whenever the disk would otherwise idle —
// speculatively stores converted chunks into a column-oriented database so
// later queries get faster and faster, converging to full database
// performance without ever paying an explicit load step.
//
// This package is the user-facing facade. The building blocks live in
// internal packages: the pipeline operator (internal/scanraw), the
// columnar engine and SQL subset (internal/engine), the database storage
// (internal/dbstore), and the bandwidth-modelled disk the system runs on
// (internal/vdisk).
//
// Basic use:
//
//	db := scanraw.Open(scanraw.Options{})
//	if err := db.Stage("events", "ts:int,user:string,amount:float",
//	        scanraw.CSV, rawBytes); err != nil { ... }
//	res, stats, err := db.Exec("SELECT user, SUM(amount) FROM events GROUP BY user")
//
// Each staged table gets one long-lived operator whose binary chunk cache,
// catalog statistics (min/max, distinct estimates) and loading progress
// persist across queries. Stats from Exec report where each query's chunks
// came from (cache, database, raw conversion) and how much was loaded;
// LoadedChunks and EstimateRange expose the catalog's view.
package scanraw

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	intscan "scanraw/internal/scanraw"
	"scanraw/internal/schema"
	"scanraw/internal/vdisk"
)

// Policy selects how aggressively query execution loads converted data
// into the database.
type Policy = intscan.WritePolicy

// The loading policies. Speculative is the paper's contribution and the
// default: it loads only when the disk would otherwise idle, plus a
// safeguard flush of the cache at end of scan.
const (
	ExternalTables = intscan.ExternalTables
	FullLoad       = intscan.FullLoad
	BufferedLoad   = intscan.BufferedLoad
	Speculative    = intscan.Speculative
	Invisible      = intscan.Invisible
)

// SpecOrder selects which chunks (and column groups) speculative loading
// writes first.
type SpecOrder = intscan.SpecPolicy

// The speculation orders. SpecScan is the paper's original file-order
// policy; SpecPayoff ranks candidates by workload access frequency ×
// unloaded width × chunk selectivity and needs ColumnWeights wired in
// (the server does this; an embedded DB without a workload source falls
// back to scan order).
const (
	SpecScan   = intscan.SpecScan
	SpecPayoff = intscan.SpecPayoff
)

// Format identifies the raw-file format of a staged table.
type Format uint8

// Supported raw formats.
const (
	// CSV is comma-separated text, one tuple per line.
	CSV Format = iota
	// TSV is tab-separated text (the SAM alignment format is TSV with 11
	// mandatory fields).
	TSV
)

// Options configures a DB.
type Options struct {
	// DiskReadMBps / DiskWriteMBps set the simulated disk bandwidth in
	// MB/s. Zero means unthrottled — appropriate when you care about
	// results, not loading dynamics.
	DiskReadMBps  int
	DiskWriteMBps int

	// Workers is the conversion worker-pool size (default 8; 0 keeps the
	// default, negative selects sequential execution).
	Workers int
	// ChunkLines is the lines-per-chunk processing unit (default 8192).
	ChunkLines int
	// CacheChunks is the binary chunk cache capacity (default 32).
	CacheChunks int
	// Policy is the loading policy (default Speculative).
	Policy Policy
	// NoSafeguard disables the end-of-scan cache flush.
	NoSafeguard bool
	// NoStats disables min/max statistics collection (and with it
	// predicate-driven chunk skipping).
	NoStats bool
	// AdaptiveWorkers lets each table's operator resize its worker pool
	// across queries based on observed utilization (grow when conversion
	// is the bottleneck, shrink when the disk is).
	AdaptiveWorkers bool
	// ConsumeWorkers sets how many goroutines evaluate delivered chunks
	// per query (parallel delivery). The default (0) keeps the classic
	// serial consume path.
	ConsumeWorkers int
	// NoFusedKernels disables the fused per-schema conversion kernels and
	// forces the classic two-stage tokenize→parse path for every chunk.
	NoFusedKernels bool
	// ColGroupWidth sets how many adjacent columns share one database page.
	// 0 keeps the default of 1 (per-column pages, maximum partial-width
	// reuse); negative selects full-chunk-width pages (one page per chunk).
	ColGroupWidth int
	// Speculation orders speculative writes: SpecScan (default, file order)
	// or SpecPayoff (workload-ranked; effective once ColumnWeights has a
	// source, which the embedded facade does not wire — servers do).
	Speculation SpecOrder
}

// Result is a materialized query result.
type Result = engine.Result

// Stats summarizes how one query executed (chunk sources, loading
// activity, per-stage times).
type Stats = intscan.RunStats

// DB is an embedded in-situ processing system: a simulated disk holding
// staged raw files and database pages, a catalog, and one live SCANRAW
// operator per staged file.
type DB struct {
	opts     Options
	disk     *vdisk.Disk
	store    *dbstore.Store
	registry *intscan.Registry

	mu      sync.Mutex
	formats map[string]Format // table name -> staged format
}

// Open creates an empty DB.
func Open(opts Options) *DB {
	var cfg vdisk.Config
	if opts.DiskReadMBps > 0 {
		cfg.ReadBandwidth = int64(opts.DiskReadMBps) << 20
	}
	if opts.DiskWriteMBps > 0 {
		cfg.WriteBandwidth = int64(opts.DiskWriteMBps) << 20
	}
	disk := vdisk.New(cfg)
	store := dbstore.NewStore(disk)
	switch {
	case opts.ColGroupWidth > 0:
		store.SetGroupWidth(opts.ColGroupWidth)
	case opts.ColGroupWidth < 0:
		store.SetGroupWidth(0) // full chunk width: one page per chunk
	}
	return &DB{
		opts:     opts,
		disk:     disk,
		store:    store,
		registry: intscan.NewRegistry(store),
		formats:  make(map[string]Format),
	}
}

// ParseSchema converts a "name:type,name:type" specification into a
// schema. Types are int, float and string (with the usual SQL aliases).
func ParseSchema(spec string) (*schema.Schema, error) {
	var cols []schema.Column
	for _, part := range strings.Split(spec, ",") {
		name, tyName, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("scanraw: schema entry %q is not name:type", part)
		}
		ty, err := schema.ParseType(tyName)
		if err != nil {
			return nil, err
		}
		cols = append(cols, schema.Column{Name: strings.TrimSpace(name), Type: ty})
	}
	return schema.New(cols...)
}

// Stage registers raw file contents as a queryable table. The schema spec
// is "name:type,..." (see ParseSchema). Staging is instant — no parsing or
// loading happens until the first query.
func (db *DB) Stage(table, schemaSpec string, format Format, raw []byte) error {
	sch, err := ParseSchema(schemaSpec)
	if err != nil {
		return err
	}
	return db.StageSchema(table, sch, format, raw)
}

// StageFile reads path from the filesystem and stages its contents.
func (db *DB) StageFile(table, schemaSpec string, format Format, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("scanraw: staging %q: %w", table, err)
	}
	return db.Stage(table, schemaSpec, format, raw)
}

// StageSchema is Stage with a pre-built schema.
func (db *DB) StageSchema(table string, sch *schema.Schema, format Format, raw []byte) error {
	blob := "raw/" + table
	if db.disk.Exists(blob) {
		return fmt.Errorf("scanraw: table %q already staged", table)
	}
	db.disk.Preload(blob, raw)
	if _, err := db.store.CreateTable(table, sch, blob); err != nil {
		db.disk.Delete(blob)
		return err
	}
	db.mu.Lock()
	db.formats[table] = format
	db.mu.Unlock()
	return nil
}

// Tables returns the staged table names, sorted.
func (db *DB) Tables() []string {
	var out []string
	for _, blob := range db.disk.List("raw/") {
		out = append(out, strings.TrimPrefix(blob, "raw/"))
	}
	return out
}

func (db *DB) operatorConfig(table string) intscan.Config {
	db.mu.Lock()
	format := db.formats[table]
	db.mu.Unlock()
	delim := byte(',')
	if format == TSV {
		delim = '\t'
	}
	workers := db.opts.Workers
	switch {
	case workers == 0:
		workers = 8
	case workers < 0:
		workers = 0
	}
	cfg := intscan.Config{
		Workers:         workers,
		ChunkLines:      db.opts.ChunkLines,
		CacheChunks:     db.opts.CacheChunks,
		Policy:          db.opts.Policy,
		Safeguard:       !db.opts.NoSafeguard,
		Delim:           delim,
		CollectStats:    !db.opts.NoStats,
		AdaptiveWorkers: db.opts.AdaptiveWorkers,
		ConsumeWorkers:  db.opts.ConsumeWorkers,
		Speculation:     db.opts.Speculation,
	}
	if db.opts.NoFusedKernels {
		cfg.FusedKernels = intscan.FusedOff
	}
	return cfg
}

// EstimateRange returns the catalog's cardinality estimate for how many
// rows of the table have the named integer column within [lo, hi], plus
// the total rows known to the catalog. Estimates come from the min/max
// statistics collected while queries convert data; before any query has
// run they cover zero rows.
func (db *DB) EstimateRange(table, column string, lo, hi int64) (estimate float64, totalRows int64, err error) {
	t, ok := db.store.Table(table)
	if !ok {
		return 0, 0, fmt.Errorf("scanraw: table %q is not staged", table)
	}
	col, ok := t.Schema().Index(column)
	if !ok {
		return 0, 0, fmt.Errorf("scanraw: unknown column %q", column)
	}
	return t.EstimateRangeRows(col, lo, hi)
}

// Exec parses and runs a SQL query against its FROM table. Depending on
// the loading policy and query history, chunks are served from the binary
// cache, the database, or converted from the raw file — the Stats report
// says which.
func (db *DB) Exec(sql string) (*Result, Stats, error) {
	from, err := tableOf(sql)
	if err != nil {
		return nil, Stats{}, err
	}
	table, ok := db.store.Table(from)
	if !ok {
		return nil, Stats{}, fmt.Errorf("scanraw: table %q is not staged", from)
	}
	return db.registry.ExecuteSQL(table, db.operatorConfig(from), sql)
}

// tableOf performs a light scan for the FROM table name so Exec can bind
// the query against the right schema. (The real parse happens inside
// ExecuteSQL with the table's schema.)
func tableOf(sql string) (string, error) {
	fields := strings.Fields(sql)
	for i, f := range fields {
		if strings.EqualFold(f, "FROM") && i+1 < len(fields) {
			return strings.Trim(fields[i+1], ","), nil
		}
	}
	return "", fmt.Errorf("scanraw: query has no FROM clause")
}

// LoadedChunks reports how many of the table's chunks have every listed
// query-relevant column in the database. With nil columns it checks all
// schema columns. The second value is the total number of discovered
// chunks (0 before the first scan).
func (db *DB) LoadedChunks(table string, columns []string) (loaded, total int, err error) {
	t, ok := db.store.Table(table)
	if !ok {
		return 0, 0, fmt.Errorf("scanraw: table %q is not staged", table)
	}
	var idxs []int
	if columns == nil {
		for i := 0; i < t.Schema().NumColumns(); i++ {
			idxs = append(idxs, i)
		}
	} else {
		for _, name := range columns {
			i, ok := t.Schema().Index(name)
			if !ok {
				return 0, 0, fmt.Errorf("scanraw: unknown column %q", name)
			}
			idxs = append(idxs, i)
		}
	}
	return t.CountLoaded(idxs), t.NumChunks(), nil
}

// WaitIdle blocks until background loading (the safeguard flush) finishes
// for every staged table.
func (db *DB) WaitIdle() {
	for _, name := range db.Tables() {
		if op, ok := db.registry.Lookup("raw/" + name); ok {
			op.WaitIdle()
		}
	}
}

// Sweep deletes operators for fully loaded tables (their queries are plain
// database scans now) and returns how many were removed.
func (db *DB) Sweep() int { return db.registry.Sweep() }

// DiskStats exposes the simulated disk counters, useful for observing
// loading activity.
func (db *DB) DiskStats() vdisk.Stats { return db.disk.Stats() }
