#!/bin/sh
# Compares the two most recent BENCH_*.json files (by name, which sorts by
# PR number) and fails when a named hot-path benchmark regressed by more
# than 20% in ns/op. Benchmarks present in only one file are skipped —
# each PR may add new ones.
set -e
THRESHOLD=${THRESHOLD:-1.20}
HOT='BenchmarkConsumeSerial|BenchmarkConsumeParallel8|BenchmarkLimitFullScan|BenchmarkLimitEarlyTerm|BenchmarkTokenizeChunk64|BenchmarkParseChunk64|BenchmarkScalarSum|BenchmarkGroupBy'

files=$(ls -1 BENCH_*.json 2>/dev/null | sort | tail -2)
if [ "$(echo "$files" | grep -c .)" -lt 2 ]; then
    echo "bench_compare: fewer than two BENCH_*.json files; nothing to compare"
    exit 0
fi
old=$(echo "$files" | head -1)
new=$(echo "$files" | tail -1)
echo "comparing $old -> $new (fail above ${THRESHOLD}x on hot-path benchmarks)"

awk -v hot="$HOT" -v threshold="$THRESHOLD" -v oldfile="$old" -v newfile="$new" '
function parse(file, table,    line, name, ns) {
    while ((getline line < file) > 0) {
        if (line !~ /"name"/) continue
        match(line, /"name": *"[^"]+"/)
        name = substr(line, RSTART, RLENGTH)
        gsub(/"name": *"?/, "", name); gsub(/"/, "", name)
        sub(/-[0-9]+$/, "", name) # GOMAXPROCS suffix varies by machine
        match(line, /"ns_per_op": *[0-9.eE+]+/)
        ns = substr(line, RSTART, RLENGTH)
        gsub(/"ns_per_op": */, "", ns)
        table[name] = ns + 0
    }
    close(file)
}
BEGIN {
    parse(oldfile, before)
    parse(newfile, after)
    fail = 0; n = 0
    for (name in after) {
        if (name !~ ("^(" hot ")")) continue
        if (!(name in before) || before[name] <= 0) continue
        n++
        ratio = after[name] / before[name]
        verdict = "ok"
        if (ratio > threshold) { verdict = "REGRESSION"; fail = 1 }
        printf "%-44s %12.0f -> %12.0f ns/op  (%.2fx) %s\n", \
            name, before[name], after[name], ratio, verdict
    }
    if (n == 0) print "no hot-path benchmarks in common; nothing compared"
    exit fail
}'
