#!/bin/sh
# Compares the two most recent BENCH_*.json files (by name, which sorts by
# PR number) and fails when a named hot-path benchmark regressed by more
# than 20% in ns/op. Benchmarks present in only one file are skipped —
# each PR may add new ones. Additionally enforces absolute floors on the
# newest file's headline ratios: fused conversion must stay at least
# KERNEL_FLOOR times faster than the two-stage path, a narrow query
# over a warm column-group table must beat the full-width layout by at
# least PARTIAL_FLOOR, and online aggregation must reach its bound at
# least OLA_FLOOR times faster than the exact full scan (each skipped
# when the file predates its metric).
set -e
THRESHOLD=${THRESHOLD:-1.20}
KERNEL_FLOOR=${KERNEL_FLOOR:-1.5}
PARTIAL_FLOOR=${PARTIAL_FLOOR:-1.5}
OLA_FLOOR=${OLA_FLOOR:-1.5}
HOT='BenchmarkConsumeSerial|BenchmarkConsumeParallel8|BenchmarkLimitFullScan|BenchmarkLimitEarlyTerm|BenchmarkTokenizeChunk64|BenchmarkParseChunk64|BenchmarkFusedChunk64|BenchmarkScalarSum|BenchmarkGroupBy'

# sort -V: BENCH_pr10 comes after BENCH_pr9, not between pr1 and pr2.
files=$(ls -1 BENCH_*.json 2>/dev/null | sort -V | tail -2)
if [ "$(echo "$files" | grep -c .)" -lt 2 ]; then
    echo "bench_compare: fewer than two BENCH_*.json files; nothing to compare"
    exit 0
fi
old=$(echo "$files" | head -1)
new=$(echo "$files" | tail -1)
echo "comparing $old -> $new (fail above ${THRESHOLD}x on hot-path benchmarks)"

awk -v hot="$HOT" -v threshold="$THRESHOLD" -v oldfile="$old" -v newfile="$new" '
function parse(file, table,    line, name, ns) {
    while ((getline line < file) > 0) {
        if (line !~ /"name"/) continue
        match(line, /"name": *"[^"]+"/)
        name = substr(line, RSTART, RLENGTH)
        gsub(/"name": *"?/, "", name); gsub(/"/, "", name)
        sub(/-[0-9]+$/, "", name) # GOMAXPROCS suffix varies by machine
        match(line, /"ns_per_op": *[0-9.eE+]+/)
        ns = substr(line, RSTART, RLENGTH)
        gsub(/"ns_per_op": */, "", ns)
        table[name] = ns + 0
    }
    close(file)
}
BEGIN {
    parse(oldfile, before)
    parse(newfile, after)
    fail = 0; n = 0
    for (name in after) {
        if (name !~ ("^(" hot ")")) continue
        if (!(name in before) || before[name] <= 0) continue
        n++
        ratio = after[name] / before[name]
        verdict = "ok"
        if (ratio > threshold) { verdict = "REGRESSION"; fail = 1 }
        printf "%-44s %12.0f -> %12.0f ns/op  (%.2fx) %s\n", \
            name, before[name], after[name], ratio, verdict
    }
    if (n == 0) print "no hot-path benchmarks in common; nothing compared"
    exit fail
}'

# Floor checks on the newest file's headline ratios.
check_floor() { # metric floor
    awk -v metric="$1" -v floor="$2" '
    $0 ~ "\"" metric "\"" {
        match($0, /: [0-9.]+/) # skip the quoted key, match the value
        speedup = substr($0, RSTART + 2, RLENGTH - 2) + 0
        found = 1
    }
    END {
        if (!found) {
            printf "%s absent; floor check skipped\n", metric
            exit 0
        }
        verdict = "ok"
        if (speedup < floor) { verdict = "BELOW FLOOR"; fail = 1 }
        printf "%s %.2fx (floor %.1fx) %s\n", metric, speedup, floor, verdict
        exit fail
    }' "$new"
}
check_floor convert_kernel_speedup "$KERNEL_FLOOR"
check_floor partial_width_hit_speedup "$PARTIAL_FLOOR"
check_floor ola_time_to_bound_speedup "$OLA_FLOOR"
