#!/bin/sh
# Runs the benchmark suite over the hot packages and records the results as
# JSON in BENCH_pr2.json: one object per benchmark with ns/op plus the
# derived serial-vs-parallel consume speedup.
set -e
GO=${GO:-go}
OUT=BENCH_pr2.json
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

$GO test -run xxx -bench . -benchmem -benchtime 20x \
    ./internal/tok/ ./internal/parse/ ./internal/engine/ | tee "$TMP"
$GO test -run xxx -bench 'BenchmarkConsume' -benchtime 10x \
    ./internal/scanraw/ | tee -a "$TMP"

awk '
BEGIN { print "{"; print "  \"benchmarks\": [" ; first = 1 }
/^Benchmark/ {
    name = $1; ns = $3
    bop = ""; aop = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") bop = $(i - 1)
        if ($(i) == "allocs/op") aop = $(i - 1)
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, ns
    if (bop != "") printf ", \"bytes_per_op\": %s", bop
    if (aop != "") printf ", \"allocs_per_op\": %s", aop
    printf "}"
    if (name ~ /^BenchmarkConsumeSerial/) serial = ns
    if (name ~ /^BenchmarkConsumeParallel8/) par = ns
}
END {
    print "\n  ],"
    if (serial > 0 && par > 0)
        printf "  \"consume_parallel_speedup\": %.2f,\n", serial / par
    printf "  \"date\": \"%s\"\n", strftime("%Y-%m-%d")
    print "}"
}' "$TMP" > "$OUT"
echo "wrote $OUT"
