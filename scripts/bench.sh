#!/bin/sh
# Runs the benchmark suite over the hot packages and records the results as
# JSON in BENCH_pr8.json (override with BENCH_OUT): one object per
# benchmark with ns/op plus the derived headline ratios —
# serial-vs-parallel consume speedup, the full-scan-vs-early-termination
# speedup for a streamed LIMIT query, the distributed-vs-single-node
# latency ratio for a scatter-gathered GROUP BY
# (distributed_merge_overhead; < 1 means the parallel fleet scan outruns
# the codec + HTTP + merge cost), the fused-vs-two-stage conversion
# speedup (convert_kernel_speedup: BenchmarkTokParseChunk64 over
# BenchmarkFusedChunk64 on the same 64-column chunk), and the
# column-group storage payoff (partial_width_hit_speedup: a
# 2-of-32-column query over a warm table on a throttled disk,
# full-width pages over per-column pages — how much narrow queries gain
# from reading only the columns they need), and the online-aggregation
# payoff (ola_time_to_bound_speedup: a full-scan SUM over the sampled
# scan that stops at a 5% bound with 95% confidence).
#
# Each benchmark runs -count times and the best run is recorded: the
# minimum is the least contaminated by scheduler noise on a shared
# machine, which keeps bench_compare.sh from flagging phantom regressions.
set -e
GO=${GO:-go}
COUNT=${COUNT:-3}

# The invariants build tag adds per-Get/Put bookkeeping (mutex-guarded
# pointer sets) to the chunk pools, which would skew every hot-path number.
# Benchmarks must run with the tag OFF; refuse if the caller smuggled it in
# through GOFLAGS.
case "${GOFLAGS:-}" in
*invariants*)
    echo "bench.sh: refusing to benchmark with -tags invariants (GOFLAGS=$GOFLAGS)" >&2
    echo "bench.sh: the invariant layer's pool bookkeeping distorts ns/op" >&2
    exit 1
    ;;
esac
OUT=${BENCH_OUT:-BENCH_pr10.json}
TMP=$(mktemp)
trap 'rm -f "$TMP"' EXIT

$GO test -run xxx -bench . -benchmem -benchtime 20x -count "$COUNT" \
    ./internal/tok/ ./internal/parse/ ./internal/kernel/ ./internal/engine/ | tee "$TMP"
$GO test -run xxx -bench 'BenchmarkConsume|BenchmarkLimit|BenchmarkNarrowQuery' -benchtime 10x -count "$COUNT" \
    ./internal/scanraw/ | tee -a "$TMP"
$GO test -run xxx -bench 'BenchmarkSingleNodeQuery|BenchmarkDistributedQuery' -benchtime 10x -count "$COUNT" \
    ./internal/cluster/ | tee -a "$TMP"
$GO test -run xxx -bench 'BenchmarkOLAFullScan|BenchmarkOLATimeToBound' -benchtime 10x -count "$COUNT" \
    ./internal/ola/ | tee -a "$TMP"

awk '
/^Benchmark/ {
    name = $1; ns = $3 + 0
    bop = ""; aop = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") bop = $(i - 1)
        if ($(i) == "allocs/op") aop = $(i - 1)
    }
    if (!(name in best)) order[++n] = name
    if (!(name in best) || ns < best[name]) {
        best[name] = ns; bytes[name] = bop; allocs[name] = aop
    }
}
END {
    print "{"
    print "  \"benchmarks\": ["
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, best[name]
        if (bytes[name] != "") printf ", \"bytes_per_op\": %s", bytes[name]
        if (allocs[name] != "") printf ", \"allocs_per_op\": %s", allocs[name]
        printf "}"
        if (i < n) printf ","
        printf "\n"
        if (name ~ /^BenchmarkConsumeSerial/) serial = best[name]
        if (name ~ /^BenchmarkConsumeParallel8/) par = best[name]
        if (name ~ /^BenchmarkLimitFullScan/) full = best[name]
        if (name ~ /^BenchmarkLimitEarlyTerm/) early = best[name]
        if (name ~ /^BenchmarkSingleNodeQuery/) single = best[name]
        if (name ~ /^BenchmarkDistributedQuery/) dist = best[name]
        if (name ~ /^BenchmarkFusedChunk64/) fused = best[name]
        if (name ~ /^BenchmarkTokParseChunk64/) tokparse = best[name]
        if (name ~ /^BenchmarkNarrowQueryColGroup/) narrowcg = best[name]
        if (name ~ /^BenchmarkNarrowQueryFullWidth/) narrowfw = best[name]
        if (name ~ /^BenchmarkOLAFullScan/) olafull = best[name]
        if (name ~ /^BenchmarkOLATimeToBound/) olabound = best[name]
    }
    print "  ],"
    if (serial > 0 && par > 0)
        printf "  \"consume_parallel_speedup\": %.2f,\n", serial / par
    if (full > 0 && early > 0)
        printf "  \"limit_early_term_speedup\": %.2f,\n", full / early
    if (single > 0 && dist > 0)
        printf "  \"distributed_merge_overhead\": %.2f,\n", dist / single
    if (fused > 0 && tokparse > 0)
        printf "  \"convert_kernel_speedup\": %.2f,\n", tokparse / fused
    if (narrowcg > 0 && narrowfw > 0)
        printf "  \"partial_width_hit_speedup\": %.2f,\n", narrowfw / narrowcg
    if (olafull > 0 && olabound > 0)
        printf "  \"ola_time_to_bound_speedup\": %.2f,\n", olafull / olabound
    printf "  \"date\": \"%s\"\n", strftime("%Y-%m-%d")
    print "}"
}' "$TMP" > "$OUT"
echo "wrote $OUT"
