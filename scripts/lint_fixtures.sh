#!/bin/sh
# lint_fixtures.sh — fixture-coverage gate for the analyzer suite.
#
# Every analyzer registered in cmd/scanrawlint must ship a fixture under
# internal/lint/testdata/src/<name> exercising BOTH directions of the
# contract: at least one finding (a `// want` marker) proving the analyzer
# fires, and at least one reasoned `//lint:ignore <name>` directive proving
# the suppression escape hatch works for it. An analyzer missing either is
# unproven — the gate fails. Run from anywhere; wired into `make check`.
set -eu

cd "$(dirname "$0")/.."

names=$(go run ./cmd/scanrawlint -list | awk '{print $1}')
if [ -z "$names" ]; then
	echo "lint_fixtures: scanrawlint -list returned no analyzers" >&2
	exit 1
fi

status=0
for name in $names; do
	dir="internal/lint/testdata/src/$name"
	if [ ! -d "$dir" ]; then
		echo "lint_fixtures: analyzer '$name' has no fixture dir $dir" >&2
		status=1
		continue
	fi
	if ! grep -rq '// want' "$dir"; then
		echo "lint_fixtures: $dir lacks a finding fixture (no '// want' marker)" >&2
		status=1
	fi
	if ! grep -rqE "//lint:ignore $name +[^ ]" "$dir"; then
		echo "lint_fixtures: $dir lacks a suppressed-finding fixture (no reasoned '//lint:ignore $name')" >&2
		status=1
	fi
done

if [ "$status" -eq 0 ]; then
	echo "lint_fixtures: every analyzer has finding + suppression fixtures"
fi
exit $status
