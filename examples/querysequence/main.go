// Querysequence: the paper's Fig. 8 in miniature. The same aggregate runs
// six times over one raw file under four loading methods, with a binary
// cache holding a quarter of the file's chunks:
//
//   - external tables: re-convert the raw file every time (constant cost)
//   - load+db: query 1 loads everything (slow), the rest scan the database
//   - buffered: chunks are written when the cache evicts them
//   - speculative: the paper's policy — query 1 costs the same as external
//     tables, later queries converge to database speed
//
// Run with: go run ./examples/querysequence
package main

import (
	"fmt"
	"log"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	intscan "scanraw/internal/scanraw"
	"scanraw/internal/vdisk"
)

const queries = 6

func main() {
	spec := gen.CSVSpec{Rows: 1 << 15, Cols: 64, Seed: 9}
	methods := []struct {
		name string
		cfg  intscan.Config
	}{
		{"speculative", intscan.Config{Policy: intscan.Speculative, Safeguard: true}},
		{"buffered", intscan.Config{Policy: intscan.BufferedLoad, Safeguard: true}},
		{"load+db", intscan.Config{Policy: intscan.FullLoad}},
		{"external", intscan.Config{Policy: intscan.ExternalTables}},
	}

	fmt.Printf("%-12s", "query")
	for _, m := range methods {
		fmt.Printf("%14s", m.name)
	}
	fmt.Println()

	times := make([][]time.Duration, len(methods))
	for mi, m := range methods {
		disk := vdisk.New(vdisk.Config{ReadBandwidth: 400 << 20, WriteBandwidth: 400 << 20})
		gen.Preload(disk, "raw/data.csv", spec)
		store := dbstore.NewStore(disk)
		table, err := store.CreateTable("data", spec.Schema(), "raw/data.csv")
		if err != nil {
			log.Fatal(err)
		}
		cfg := m.cfg
		cfg.Workers = 8
		cfg.ChunkLines = 1 << 11
		cfg.CacheChunks = 4 // 1/4 of the 16 chunks
		op := intscan.New(store, table, cfg)

		cols := make([]int, spec.Cols)
		for i := range cols {
			cols[i] = i
		}
		q, err := engine.SumAllColumns(table.Schema(), "data", cols)
		if err != nil {
			log.Fatal(err)
		}
		want := gen.SumRange(spec, cols, 0, spec.Rows)
		for qi := 0; qi < queries; qi++ {
			res, st, err := intscan.ExecuteQuery(op, q)
			if err != nil {
				log.Fatal(err)
			}
			if res.Rows[0][0].Int != want {
				log.Fatalf("%s query %d: wrong result", m.name, qi+1)
			}
			if m.name == "external" {
				op.Cache().Clear() // external tables discard converted data
			}
			// No WaitIdle: the safeguard flush overlaps the next query,
			// which waits for it before reading — as in the paper.
			times[mi] = append(times[mi], st.Duration)
		}
	}

	for qi := 0; qi < queries; qi++ {
		fmt.Printf("%-12d", qi+1)
		for mi := range methods {
			fmt.Printf("%12.1fms", float64(times[mi][qi].Microseconds())/1000)
		}
		fmt.Println()
	}
	fmt.Printf("%-12s", "cumulative")
	for mi := range methods {
		var sum time.Duration
		for _, t := range times[mi] {
			sum += t
		}
		fmt.Printf("%12.1fms", float64(sum.Microseconds())/1000)
	}
	fmt.Println()
}
