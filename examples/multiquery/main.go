// Multiquery: shared-scan execution of several queries — the multi-query
// processing the paper lists as future work (§7), built on the same
// operator.
//
// Three analysts ask different questions of the same raw file at the same
// time. Run separately, each query would scan and convert the file; with
// RunShared the operator converts the union of the needed columns once and
// feeds every query from the same chunk stream, so three queries cost
// about one scan.
//
// Run with: go run ./examples/multiquery
package main

import (
	"fmt"
	"log"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	intscan "scanraw/internal/scanraw"
	"scanraw/internal/vdisk"
)

func main() {
	spec := gen.CSVSpec{Rows: 1 << 15, Cols: 16, Seed: 77}
	disk := vdisk.New(vdisk.Config{ReadBandwidth: 300 << 20, WriteBandwidth: 150 << 20})
	gen.Preload(disk, "raw/metrics.csv", spec)
	store := dbstore.NewStore(disk)
	table, err := store.CreateTable("metrics", spec.Schema(), "raw/metrics.csv")
	if err != nil {
		log.Fatal(err)
	}
	newOp := func() *intscan.Operator {
		return intscan.New(store, table, intscan.Config{
			Workers: 8, ChunkLines: 2048, CacheChunks: 4,
		})
	}

	sqls := []string{
		"SELECT SUM(c0+c1) AS total FROM metrics",
		"SELECT COUNT(*) AS hot FROM metrics WHERE c2 > 2000000000",
		"SELECT MIN(c3), MAX(c3), AVG(c3) FROM metrics",
	}
	queries := make([]*engine.Query, len(sqls))
	for i, s := range sqls {
		q, err := engine.ParseSQL(s, table.Schema())
		if err != nil {
			log.Fatal(err)
		}
		queries[i] = q
	}

	// Shared scan: one pass for all three queries.
	op := newOp()
	start := time.Now()
	results, st, err := intscan.ExecuteQueries(op, queries)
	if err != nil {
		log.Fatal(err)
	}
	shared := time.Since(start)
	for i, res := range results {
		fmt.Printf("> %s\n%s\n", sqls[i], res)
	}
	fmt.Printf("shared scan: %v for %d queries (%d chunks converted once)\n\n",
		shared.Round(time.Millisecond), len(queries), st.DeliveredRaw)

	// Baseline: each query scans on its own operator (no cache reuse).
	start = time.Now()
	for _, q := range queries {
		if _, _, err := intscan.ExecuteQuery(newOp(), q); err != nil {
			log.Fatal(err)
		}
	}
	separate := time.Since(start)
	fmt.Printf("separate scans: %v — shared is %.1fx faster\n",
		separate.Round(time.Millisecond), float64(separate)/float64(shared))
}
