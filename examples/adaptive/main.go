// Adaptive: how speculative loading adapts to the resource balance (§4).
//
// The same query runs over the same file on two different simulated disks:
//
//   - a fast disk (CPU-bound): the READ thread blocks on the full text
//     buffer, the disk idles, and speculative loading stores nearly every
//     converted chunk "for free";
//   - a slow disk (I/O-bound): the pipeline keeps the disk saturated with
//     reads, no idle intervals exist, and only the safeguard flush of the
//     cache loads anything.
//
// The example also shows min/max statistics at work: after the first scan
// collects per-chunk statistics, a selective query skips most chunks
// without reading them.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/gen"
	intscan "scanraw/internal/scanraw"
	"scanraw/internal/vdisk"
)

func run(label string, diskMBps int64, workers int) {
	spec := gen.CSVSpec{Rows: 1 << 15, Cols: 32, Seed: 5}
	disk := vdisk.New(vdisk.Config{
		ReadBandwidth:  diskMBps << 20,
		WriteBandwidth: diskMBps << 20,
	})
	gen.Preload(disk, "raw/data.csv", spec)
	store := dbstore.NewStore(disk)
	table, err := store.CreateTable("data", spec.Schema(), "raw/data.csv")
	if err != nil {
		log.Fatal(err)
	}
	op := intscan.New(store, table, intscan.Config{
		Workers:      workers,
		ChunkLines:   1 << 11,
		Policy:       intscan.Speculative,
		Safeguard:    true,
		CacheChunks:  4,
		CollectStats: true,
	})

	cols := make([]int, spec.Cols)
	for i := range cols {
		cols[i] = i
	}
	q, err := engine.SumAllColumns(table.Schema(), "data", cols)
	if err != nil {
		log.Fatal(err)
	}
	_, st, err := intscan.ExecuteQuery(op, q)
	if err != nil {
		log.Fatal(err)
	}
	op.WaitIdle()
	loaded := table.CountLoaded(cols)
	fmt.Printf("%-28s %8v   loaded during run: %2d/%d   after safeguard: %2d/%d\n",
		label, st.Duration.Round(time.Millisecond),
		st.WrittenDuringRun, table.NumChunks(), loaded, table.NumChunks())

	// A selective follow-up query: statistics collected during the first
	// conversion let SCANRAW skip chunks whose min/max exclude the range.
	sel, err := engine.ParseSQL("SELECT COUNT(*) FROM data WHERE c0 < 4096", table.Schema())
	if err != nil {
		log.Fatal(err)
	}
	_, st2, err := intscan.ExecuteQuery(op, sel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %8v   chunks skipped by min/max stats: %d/%d\n\n",
		"  selective follow-up", st2.Duration.Round(time.Millisecond),
		st2.SkippedChunks, table.NumChunks())
}

func main() {
	fmt.Println("speculative loading adapts to the CPU/I-O balance:")
	fmt.Println()
	run("fast disk (CPU-bound)", 4096, 2)
	run("slow disk (I/O-bound)", 100, 8)
}
