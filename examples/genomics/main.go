// Genomics: the paper's motivating workload (§1). Variant identification
// requires the distribution of the CIGAR field across reads whose sequence
// exhibits a certain pattern — a group-by aggregate with a pattern
// predicate that geneticists normally answer by writing a program against
// SAMtools/BAMTools.
//
// This example runs that query three ways over a synthetic alignment file:
//
//  1. in-situ over SAM text through the parallel SCANRAW pipeline,
//  2. over the same file again, now served from cache and database thanks
//     to speculative loading, and
//  3. over the BAM binary through a deliberately sequential BAMTools-style
//     block reader — the configuration the paper found 7x slower despite
//     the 5x smaller file, because decompression serializes.
//
// Run with: go run ./examples/genomics
package main

import (
	"errors"
	"fmt"
	"io"
	"log"
	"time"

	"scanraw/internal/dbstore"
	"scanraw/internal/engine"
	"scanraw/internal/sam"
	intscan "scanraw/internal/scanraw"
	"scanraw/internal/vdisk"
)

const cigarQuery = "SELECT cigar, COUNT(*) AS reads FROM alignments " +
	"WHERE seq LIKE '%ACGTAC%' GROUP BY cigar"

func main() {
	spec := sam.Spec{Reads: 100000, Seed: 2024}
	disk := vdisk.New(vdisk.Config{ReadBandwidth: 300 << 20, WriteBandwidth: 300 << 20})

	samSize := sam.PreloadSAM(disk, "raw/alignments.sam", spec)
	bamSize, err := sam.PreloadBAM(disk, "raw/alignments.bam", spec, 4096)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SAM %0.1f MB, BAM %0.1f MB (%.1fx smaller)\n\n",
		float64(samSize)/(1<<20), float64(bamSize)/(1<<20), float64(samSize)/float64(bamSize))

	store := dbstore.NewStore(disk)
	table, err := store.CreateTable("alignments", sam.Schema(), "raw/alignments.sam")
	if err != nil {
		log.Fatal(err)
	}
	op := intscan.New(store, table, intscan.Config{
		Workers:     8,
		ChunkLines:  8192,
		Policy:      intscan.Speculative,
		Safeguard:   true,
		CacheChunks: 4,
		Delim:       '\t',
	})
	q, err := engine.ParseSQL(cigarQuery, sam.Schema())
	if err != nil {
		log.Fatal(err)
	}

	// 1) In-situ over SAM text.
	res, st, err := intscan.ExecuteQuery(op, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— SAM via SCANRAW (first query, %v; loaded %d chunks during run) —\n%s\n",
		st.Duration.Round(time.Millisecond), st.WrittenDuringRun, res)
	op.WaitIdle()

	// 2) Same query again: cache + database, no re-parsing.
	res2, st2, err := intscan.ExecuteQuery(op, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— SAM via SCANRAW (second query, %v; %d cache / %d db / %d raw chunks) —\nsame %d CIGAR groups\n\n",
		st2.Duration.Round(time.Millisecond), st2.DeliveredCache, st2.DeliveredDB,
		st2.DeliveredRaw, len(res2.Rows))

	// 3) BAM through the sequential access library.
	start := time.Now()
	ex, err := engine.NewExecutor(q, sam.Schema())
	if err != nil {
		log.Fatal(err)
	}
	br, err := sam.NewBAMReader(disk, "raw/alignments.bam")
	if err != nil {
		log.Fatal(err)
	}
	for id := 0; ; id++ {
		reads, err := br.NextBlock()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		bc, err := sam.ReadsToChunk(id, reads, q.RequiredColumns())
		if err != nil {
			log.Fatal(err)
		}
		if err := ex.Consume(bc); err != nil {
			log.Fatal(err)
		}
	}
	res3, err := ex.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— BAM via sequential BAMTools-style reader (%v) —\nsame %d CIGAR groups\n\n",
		time.Since(start).Round(time.Millisecond), len(res3.Rows))

	// 4) BAM again, but with a block index and parallel decoding — the
	// extension that removes the sequential bottleneck.
	start = time.Now()
	ex2, err := engine.NewExecutor(q, sam.Schema())
	if err != nil {
		log.Fatal(err)
	}
	bidx, err := sam.BuildBAMIndex(disk, "raw/alignments.bam")
	if err != nil {
		log.Fatal(err)
	}
	err = sam.DecodeParallel(disk, "raw/alignments.bam", bidx, 8, nil,
		func(id int, reads []sam.Read) error {
			bc, err := sam.ReadsToChunk(id, reads, q.RequiredColumns())
			if err != nil {
				return err
			}
			return ex2.Consume(bc)
		})
	if err != nil {
		log.Fatal(err)
	}
	res4, err := ex2.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("— BAM via indexed parallel decoder, 8 workers (%v) —\nsame %d CIGAR groups\n",
		time.Since(start).Round(time.Millisecond), len(res4.Rows))
	fmt.Println("   (decoding here is real CPU work, so the parallel win is bounded by")
	fmt.Println("    this machine's cores; `cmd/experiments table1` shows the effect")
	fmt.Println("    under the calibrated machine model)")

	if res.String() != res3.String() || res.String() != res4.String() {
		log.Fatal("methods disagree on the CIGAR distribution")
	}
	fmt.Println("\nall methods agree on the distribution ✓")
}
