#!/bin/sh
# Online aggregation demo: converging estimates with confidence bounds
# and error-driven early termination over a raw CSV.
#
# A scanrawd serves a generated 200k-row sales file. The same aggregate
# runs three ways: exactly (the baseline full scan), as an online
# aggregation stopping when the 95% confidence bound falls below 2%
# relative error (?error=0.02 — the scan samples chunks in a seeded
# random permutation and stops early), and as an NDJSON stream showing
# the estimate converge line by line. A GROUP BY variant shows per-group
# bounds, and /metrics shows the ola counters at the end.
#
# Run from the repository root: ./examples/ola/run.sh
set -e
GO=${GO:-go}
DIR=$(mktemp -d)
trap 'kill $SRV 2>/dev/null; wait 2>/dev/null; rm -rf "$DIR"' EXIT

echo "== building scanrawd"
$GO build -o "$DIR/scanrawd" ./cmd/scanrawd

echo "== generating sales.csv (200000 rows: region, units, cents)"
awk 'BEGIN {
    srand(7)
    for (i = 0; i < 200000; i++)
        printf "%d,%d,%d\n", int(rand() * 8), int(rand() * 100), int(rand() * 10000)
}' > "$DIR/sales.csv"

echo "== starting scanrawd (-chunk 2000 -> 100 chunks)"
"$DIR/scanrawd" -addr 127.0.0.1:9190 -file "sales=$DIR/sales.csv" \
    -schema 'sales=region:int64,units:int64,cents:int64' -chunk 2000 & SRV=$!
for _ in $(seq 1 50); do
    curl -sf "http://127.0.0.1:9190/healthz" > /dev/null 2>&1 && break
    sleep 0.1
done

q() { # sql [query-params]
    echo "-> $1  ${2:+(?$2)}"
    curl -s "http://127.0.0.1:9190/query${2:+?$2}" -d "{\"sql\": \"$1\"}"
    echo
    echo
}

echo
echo "== exact baseline: full scan"
q 'SELECT SUM(cents) FROM sales'

echo "== online aggregation: stop at 2% relative error, 95% confidence"
q 'SELECT SUM(cents) FROM sales' 'error=0.02&confidence=0.95&seed=42'

echo "== the same, streamed: watch the bound shrink line by line"
echo "-> SELECT AVG(cents) FROM sales  (?stream=ndjson&error=0.01)"
curl -s "http://127.0.0.1:9190/query?stream=ndjson&error=0.01&seed=7" \
    -d '{"sql": "SELECT AVG(cents) FROM sales"}'
echo

echo "== grouped estimates: per-group confidence bounds"
q 'SELECT region, SUM(units), AVG(cents) FROM sales GROUP BY region' 'error=0.05&seed=11'

echo "== error=0: the sampled scan runs to completion and the answer is exact"
q 'SELECT COUNT(*) FROM sales WHERE cents < 5000' 'error=0'

echo "== ola serving counters"
curl -s http://127.0.0.1:9190/metrics | tr ',' '\n' | grep -E 'ola_' | sed 's/[{}]//g'
echo
