// Quickstart: stage a raw CSV file and query it in-situ.
//
// The first query converts the file through the parallel SCANRAW pipeline
// and — because the disk has idle intervals while the CPU converts —
// speculatively loads the converted chunks into the embedded database.
// The second query is served from the binary cache and the database
// without touching the raw text again.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"scanraw"
)

func main() {
	// A small orders file; in real use this would be os.ReadFile output.
	var raw strings.Builder
	for i := 0; i < 50000; i++ {
		fmt.Fprintf(&raw, "%d,%d,%d,%s\n", i, i%97, (i*7)%1000, []string{"eu", "us", "apac"}[i%3])
	}

	// A DB with a 200 MB/s simulated disk so loading dynamics are visible.
	db := scanraw.Open(scanraw.Options{
		DiskReadMBps:  200,
		DiskWriteMBps: 200,
		ChunkLines:    4096,
		Policy:        scanraw.Speculative,
	})
	if err := db.Stage("orders", "id:int, customer:int, amount:int, region:string",
		scanraw.CSV, []byte(raw.String())); err != nil {
		log.Fatal(err)
	}

	queries := []string{
		// Touches only `amount`: selective conversion parses one column,
		// and speculative loading stores it.
		"SELECT COUNT(*) AS orders, SUM(amount) AS revenue FROM orders",
		// Needs `region` too, so chunks convert from raw again and the
		// new column joins the database (query-driven partial loading).
		"SELECT region, SUM(amount) AS revenue FROM orders GROUP BY region",
		"SELECT customer, COUNT(*) AS n FROM orders WHERE amount > 900 GROUP BY customer LIMIT 5",
		// Everything this query needs is loaded by now: no raw access.
		"SELECT region, SUM(amount) AS revenue FROM orders GROUP BY region",
	}
	for _, q := range queries {
		res, st, err := db.Exec(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("> %s\n%s", q, res)
		fmt.Printf("[%v; chunks: %d cache / %d db / %d raw / %d skipped; loaded %d during run]\n\n",
			st.Duration.Round(100_000), st.DeliveredCache, st.DeliveredDB,
			st.DeliveredRaw, st.SkippedChunks, st.WrittenDuringRun)
		db.WaitIdle()
	}

	// Loading is query-driven: only columns some query touched are in the
	// database (`id` was never queried, so checking all columns reports 0).
	loaded, total, err := db.LoadedChunks("orders", []string{"customer", "amount", "region"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chunks with all queried columns loaded: %d/%d\n", loaded, total)
}
