#!/bin/sh
# Distributed scatter-gather demo: a 3-node scanrawd fleet behind a
# coordinator.
#
# Two workers each serve their own half of a generated orders file
# (split-files deployment: worker 2's chunks are placed after worker 1's
# in the global chunk space by `base`), a third worker replicates the
# second half so the fleet survives losing a peer. The coordinator
# scatters each query to the owning workers, merges the returned partials
# through the engine merge tree, and answers on the same /query wire a
# single scanrawd uses.
#
# Run from the repository root: ./examples/fleet/run.sh
set -e
GO=${GO:-go}
DIR=$(mktemp -d)
trap 'kill $W1 $W2 $W3 $CO 2>/dev/null; wait 2>/dev/null; rm -rf "$DIR"' EXIT

echo "== building scanrawd"
$GO build -o "$DIR/scanrawd" ./cmd/scanrawd

echo "== generating orders.csv split in two halves (4000 + 4000 rows)"
awk 'BEGIN { for (i = 0; i < 4000; i++) printf "%d,%d,%d\n", i, i % 97, (i * 7) % 1000 }' > "$DIR/orders.1.csv"
awk 'BEGIN { for (i = 4000; i < 8000; i++) printf "%d,%d,%d\n", i, i % 97, (i * 7) % 1000 }' > "$DIR/orders.2.csv"

# Chunk geometry: -chunk 500 → 8 chunks per half. Worker 1 owns global
# chunks [0,8); workers 2 and 3 both own [8,16) (replicas) with base 8
# mapping their local chunk 0 to global chunk 8.
cat > "$DIR/fleet.json" <<'EOF'
{
  "peers": [
    {"addr": "127.0.0.1:9101", "owns": [{"table": "orders", "lo": 0, "hi": 8, "base": 0}]},
    {"addr": "127.0.0.1:9102", "owns": [{"table": "orders", "lo": 0, "hi": 8, "base": 8}]},
    {"addr": "127.0.0.1:9103", "owns": [{"table": "orders", "lo": 0, "hi": 8, "base": 8}]}
  ],
  "tables": {"orders": {"schema": "id:int64,customer:int64,amount:int64"}}
}
EOF

echo "== starting 3 workers + coordinator"
"$DIR/scanrawd" -addr 127.0.0.1:9101 -file "orders=$DIR/orders.1.csv" \
    -schema 'orders=id:int64,customer:int64,amount:int64' -chunk 500 & W1=$!
"$DIR/scanrawd" -addr 127.0.0.1:9102 -file "orders=$DIR/orders.2.csv" \
    -schema 'orders=id:int64,customer:int64,amount:int64' -chunk 500 & W2=$!
"$DIR/scanrawd" -addr 127.0.0.1:9103 -file "orders=$DIR/orders.2.csv" \
    -schema 'orders=id:int64,customer:int64,amount:int64' -chunk 500 & W3=$!
"$DIR/scanrawd" -addr 127.0.0.1:9100 -coordinator -fleet "$DIR/fleet.json" \
    -health-interval 500ms & CO=$!

for port in 9101 9102 9103 9100; do
    for _ in $(seq 1 50); do
        curl -sf "http://127.0.0.1:$port/healthz" > /dev/null 2>&1 && break
        sleep 0.1
    done
done

q() {
    echo "-> $1"
    curl -s http://127.0.0.1:9100/query -d "{\"sql\": \"$1\"}"
    echo
}

echo "== querying the fleet through the coordinator"
q "SELECT COUNT(*), SUM(amount) FROM orders"
q "SELECT customer, SUM(amount), COUNT(*) AS n FROM orders WHERE amount > 900 GROUP BY customer HAVING n > 5"
q "SELECT id, amount FROM orders ORDER BY amount DESC LIMIT 3"

echo "== killing worker 2 mid-fleet; its replica (worker 3) takes over"
kill -9 $W2
q "SELECT COUNT(*), SUM(amount) FROM orders"

echo "== coordinator metrics (note cluster_peer_failures / cluster_retries)"
curl -s http://127.0.0.1:9100/metrics
echo
