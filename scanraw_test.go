package scanraw

import (
	"os"
	"strings"
	"testing"
)

const demoCSV = "1,10,alpha\n2,20,beta\n3,30,alpha\n4,40,gamma\n5,50,alpha\n"

func stageDemo(t *testing.T, opts Options) *DB {
	t.Helper()
	db := Open(opts)
	if err := db.Stage("demo", "id:int, amount:int, tag:string", CSV, []byte(demoCSV)); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenStageExec(t *testing.T) {
	db := stageDemo(t, Options{})
	res, st, err := db.Exec("SELECT SUM(amount) AS total FROM demo")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 150 {
		t.Errorf("total = %d, want 150", res.Rows[0][0].Int)
	}
	if st.Delivered() == 0 {
		t.Error("no chunks delivered")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != "demo" {
		t.Errorf("Tables = %v", got)
	}
}

func TestExecGroupBy(t *testing.T) {
	db := stageDemo(t, Options{})
	res, _, err := db.Exec("SELECT tag, COUNT(*) AS n, SUM(amount) FROM demo GROUP BY tag")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	out := res.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "90") {
		t.Errorf("result table:\n%s", out)
	}
}

func TestStageErrors(t *testing.T) {
	db := Open(Options{})
	if err := db.Stage("t", "bad schema", CSV, nil); err == nil {
		t.Error("bad schema spec should fail")
	}
	if err := db.Stage("t", "a:int", CSV, []byte("1\n")); err != nil {
		t.Fatal(err)
	}
	if err := db.Stage("t", "a:int", CSV, []byte("1\n")); err == nil {
		t.Error("duplicate staging should fail")
	}
}

func TestExecErrors(t *testing.T) {
	db := stageDemo(t, Options{})
	if _, _, err := db.Exec("SELECT 1"); err == nil {
		t.Error("missing FROM should fail")
	}
	if _, _, err := db.Exec("SELECT id FROM missing LIMIT 1"); err == nil {
		t.Error("unknown table should fail")
	}
	if _, _, err := db.Exec("SELECT nope FROM demo LIMIT 1"); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestSpeculativeLoadingThroughFacade(t *testing.T) {
	var rows strings.Builder
	for i := 0; i < 4096; i++ {
		rows.WriteString("1,2,3\n")
	}
	db := Open(Options{ChunkLines: 512, CacheChunks: 2, Policy: Speculative})
	if err := db.Stage("wide", "a:int,b:int,c:int", CSV, []byte(rows.String())); err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.Exec("SELECT SUM(a+b+c) FROM wide"); err != nil {
		t.Fatal(err)
	}
	db.WaitIdle()
	loaded1, total, err := db.LoadedChunks("wide", []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if total != 8 {
		t.Fatalf("total chunks = %d", total)
	}
	if loaded1 == 0 {
		t.Error("safeguard should have loaded at least the cached chunks")
	}
	// Keep querying until fully loaded; progress must be monotone.
	prev := loaded1
	for q := 0; q < 8 && prev < total; q++ {
		if _, _, err := db.Exec("SELECT SUM(a+b+c) FROM wide"); err != nil {
			t.Fatal(err)
		}
		db.WaitIdle()
		cur, _, _ := db.LoadedChunks("wide", []string{"a", "b", "c"})
		if cur < prev {
			t.Fatalf("loaded regressed %d -> %d", prev, cur)
		}
		prev = cur
	}
	if prev != total {
		t.Errorf("never fully loaded: %d/%d", prev, total)
	}
	if n := db.Sweep(); n != 1 {
		t.Errorf("Sweep removed %d operators, want 1", n)
	}
}

func TestTSVFormat(t *testing.T) {
	db := Open(Options{})
	if err := db.Stage("tabs", "a:int,b:string", TSV, []byte("1\tx\n2\ty\n")); err != nil {
		t.Fatal(err)
	}
	res, _, err := db.Exec("SELECT SUM(a) FROM tabs")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 3 {
		t.Errorf("sum = %d", res.Rows[0][0].Int)
	}
}

func TestSequentialWorkers(t *testing.T) {
	db := Open(Options{Workers: -1}) // sequential mode
	if err := db.Stage("s", "a:int", CSV, []byte("5\n6\n")); err != nil {
		t.Fatal(err)
	}
	res, _, err := db.Exec("SELECT SUM(a) FROM s")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 11 {
		t.Errorf("sum = %d", res.Rows[0][0].Int)
	}
}

func TestLoadedChunksErrors(t *testing.T) {
	db := stageDemo(t, Options{})
	if _, _, err := db.LoadedChunks("missing", nil); err == nil {
		t.Error("unknown table should fail")
	}
	if _, _, err := db.LoadedChunks("demo", []string{"nope"}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, total, err := db.LoadedChunks("demo", nil); err != nil || total != 0 {
		t.Errorf("before first scan: total=%d err=%v", total, err)
	}
}

func TestEstimateRange(t *testing.T) {
	db := stageDemo(t, Options{})
	// Before any query: catalog covers no rows.
	est, total, err := db.EstimateRange("demo", "amount", 0, 100)
	if err != nil || est != 0 || total != 0 {
		t.Errorf("pre-query estimate = %v/%v, %v", est, total, err)
	}
	if _, _, err := db.Exec("SELECT SUM(amount) FROM demo"); err != nil {
		t.Fatal(err)
	}
	est, total, err = db.EstimateRange("demo", "amount", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 {
		t.Errorf("total = %v, want 5", total)
	}
	// amount values are 10..50; [0,100] covers everything.
	if est != 5 {
		t.Errorf("full-range estimate = %v, want 5", est)
	}
	if _, _, err := db.EstimateRange("missing", "amount", 0, 1); err == nil {
		t.Error("unknown table should fail")
	}
	if _, _, err := db.EstimateRange("demo", "nope", 0, 1); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestSelectStarThroughFacade(t *testing.T) {
	db := stageDemo(t, Options{})
	res, _, err := db.Exec("SELECT * FROM demo ORDER BY amount DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || len(res.Cols) != 3 {
		t.Fatalf("shape = %dx%d", len(res.Rows), len(res.Cols))
	}
	if res.Rows[0][1].Int != 50 || res.Rows[1][1].Int != 40 {
		t.Errorf("top amounts = %v, %v", res.Rows[0][1], res.Rows[1][1])
	}
}

func TestAdaptiveWorkersOption(t *testing.T) {
	db := Open(Options{Workers: 2, AdaptiveWorkers: true})
	if err := db.Stage("t", "a:int", CSV, []byte("1\n2\n3\n")); err != nil {
		t.Fatal(err)
	}
	if _, st, err := db.Exec("SELECT SUM(a) FROM t"); err != nil || st.WorkersUsed != 2 {
		t.Errorf("first query workers = %d (%v), want 2", st.WorkersUsed, err)
	}
}

func TestStageFile(t *testing.T) {
	path := t.TempDir() + "/data.csv"
	if err := os.WriteFile(path, []byte("1,x\n2,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	db := Open(Options{})
	if err := db.StageFile("t", "a:int,b:string", CSV, path); err != nil {
		t.Fatal(err)
	}
	res, _, err := db.Exec("SELECT SUM(a) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 3 {
		t.Errorf("sum = %d", res.Rows[0][0].Int)
	}
	if err := db.StageFile("u", "a:int", CSV, path+"-missing"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestParseSchemaSpec(t *testing.T) {
	sch, err := ParseSchema("a:int, b:float, c:string")
	if err != nil {
		t.Fatal(err)
	}
	if sch.NumColumns() != 3 {
		t.Errorf("cols = %d", sch.NumColumns())
	}
	for _, bad := range []string{"", "a", "a:blob", ":int"} {
		if _, err := ParseSchema(bad); err == nil {
			t.Errorf("ParseSchema(%q) should fail", bad)
		}
	}
}
