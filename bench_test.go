// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (one benchmark per artifact) plus the ablation
// studies. Run them with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes its experiment at a reduced scale per iteration
// and reports the headline shape numbers via b.ReportMetric, so `-bench`
// output doubles as a quick reproduction check. The full-scale rendered
// tables come from `go run ./cmd/experiments`.
package scanraw

import (
	"io"
	"testing"
	"time"

	"scanraw/internal/bench"
)

// benchScale keeps a single iteration in the tens of milliseconds.
func benchScale() bench.Scale {
	return bench.Scale{
		Rows:        1 << 13,
		Cols:        32,
		ChunkLines:  1 << 9, // 16 chunks
		CacheChunks: 4,
		SAMReads:    8000,
		Reps:        -1, // one measurement per benchmark iteration
	}
}

func msOf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// BenchmarkFig4 regenerates Fig. 4: execution time, loaded percentage and
// speedup versus worker count for the three SCANRAW regimes.
func BenchmarkFig4(b *testing.B) {
	sc := benchScale()
	var last *bench.Fig4Result
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig4(sc, []int{0, 2, 8})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	seq, par := last.Rows[0], last.Rows[len(last.Rows)-1]
	b.ReportMetric(msOf(seq.ExternalTime), "ms-external-seq")
	b.ReportMetric(msOf(par.ExternalTime), "ms-external-8w")
	b.ReportMetric(par.SpeculativeLoadedPct, "%loaded-spec-8w")
	b.ReportMetric(seq.SpeculativeLoadedPct, "%loaded-spec-seq")
}

// BenchmarkFig5 regenerates Fig. 5: per-chunk stage times vs column count
// under full loading.
func BenchmarkFig5(b *testing.B) {
	sc := benchScale()
	var last *bench.Fig5Result
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig5(sc, []int{2, 16, 64})
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	wide := last.Rows[len(last.Rows)-1]
	b.ReportMetric(msOf(wide.Parse), "ms-parse-per-chunk-64col")
	b.ReportMetric(100*float64(wide.Parse)/float64(wide.Total()), "%parse-share-64col")
}

// BenchmarkFig6 regenerates Fig. 6: selective tokenizing/parsing across
// projected-column counts and positions.
func BenchmarkFig6(b *testing.B) {
	sc := benchScale()
	sc.Cols = 64
	var last *bench.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig6(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var narrow, wide time.Duration
	for _, c := range last.Cells {
		if c.Position == 0 && c.NumCols == 1 {
			narrow = c.Time
		}
		if c.Position == 0 && c.NumCols == 32 {
			wide = c.Time
		}
	}
	b.ReportMetric(msOf(narrow), "ms-1col")
	b.ReportMetric(msOf(wide), "ms-32col")
}

// BenchmarkFig7 regenerates Fig. 7: the chunk-size sweep.
func BenchmarkFig7(b *testing.B) {
	sc := benchScale()
	var last *bench.Fig7Result
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig7(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var best, worst time.Duration
	for _, c := range last.Cells {
		if c.Workers != 8 {
			continue
		}
		if best == 0 || c.Time < best {
			best = c.Time
		}
		if c.Time > worst {
			worst = c.Time
		}
	}
	b.ReportMetric(msOf(best), "ms-best-chunksize-8w")
	b.ReportMetric(msOf(worst), "ms-worst-chunksize-8w")
}

// BenchmarkFig8 regenerates Fig. 8: the six-query sequence across the four
// loading methods.
func BenchmarkFig8(b *testing.B) {
	sc := benchScale()
	var last *bench.Fig8Result
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig8(sc, 6)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, s := range last.Series {
		cum := s.Cumulative()
		switch s.Method {
		case bench.MethodSpeculative:
			b.ReportMetric(msOf(s.Times[0]), "ms-spec-q1")
			b.ReportMetric(msOf(cum[len(cum)-1]), "ms-spec-cum6")
		case bench.MethodExternal:
			b.ReportMetric(msOf(s.Times[0]), "ms-external-q1")
			b.ReportMetric(msOf(cum[len(cum)-1]), "ms-external-cum6")
		case bench.MethodLoadDB:
			b.ReportMetric(msOf(cum[len(cum)-1]), "ms-loaddb-cum6")
		}
	}
}

// BenchmarkFig9 regenerates Fig. 9: the CPU/I-O utilization trace under
// speculative loading in a CPU-bound configuration.
func BenchmarkFig9(b *testing.B) {
	sc := benchScale()
	sc.Rows = 1 << 12 // fig9 multiplies columns by 4
	var last *bench.Fig9Result
	for i := 0; i < b.N; i++ {
		r, err := bench.RunFig9(sc, time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	var maxCPU, maxWrite float64
	for _, s := range last.Samples {
		if s.CPUPercent > maxCPU {
			maxCPU = s.CPUPercent
		}
		if s.WritePercent > maxWrite {
			maxWrite = s.WritePercent
		}
	}
	b.ReportMetric(maxCPU, "max-CPU%")
	b.ReportMetric(maxWrite, "max-write%")
}

// BenchmarkTable1 regenerates Table 1: the SAM/BAM genomics workload
// across the five methods.
func BenchmarkTable1(b *testing.B) {
	sc := benchScale()
	var last *bench.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := bench.RunTable1(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		switch row.Method {
		case "External tables (SAM)":
			b.ReportMetric(msOf(row.Time), "ms-sam-external")
		case "External tables (BAM + BAMTools)":
			b.ReportMetric(msOf(row.Time), "ms-bam-bamtools")
		case "Database processing":
			b.ReportMetric(msOf(row.Time), "ms-db")
		}
	}
}

// BenchmarkAblationCacheBias compares loaded-biased LRU against plain LRU.
func BenchmarkAblationCacheBias(b *testing.B) {
	sc := benchScale()
	var last *bench.AblationCacheBiasResult
	for i := 0; i < b.N; i++ {
		r, err := bench.RunAblationCacheBias(sc, 3)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.BiasedLoaded[2]), "chunks-loaded-biased")
	b.ReportMetric(float64(last.UnbiasedLoad[2]), "chunks-loaded-unbiased")
}

// BenchmarkAblationSelective compares selective conversion against
// converting every column for a narrow query.
func BenchmarkAblationSelective(b *testing.B) {
	sc := benchScale()
	var last *bench.AblationSelectiveResult
	for i := 0; i < b.N; i++ {
		r, err := bench.RunAblationSelective(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(msOf(last.SelectiveTime), "ms-selective")
	b.ReportMetric(msOf(last.FullTime), "ms-full-conversion")
}

// BenchmarkAblationSafeguard compares speculative loading with and without
// the safeguard flush in an I/O-bound run.
func BenchmarkAblationSafeguard(b *testing.B) {
	sc := benchScale()
	var last *bench.AblationSafeguardResult
	for i := 0; i < b.N; i++ {
		r, err := bench.RunAblationSafeguard(sc, 3)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.WithLoaded[2]), "chunks-loaded-with")
	b.ReportMetric(float64(last.WithoutLoaded[2]), "chunks-loaded-without")
}

// BenchmarkAblationStats compares a selective query with and without
// min/max chunk skipping.
func BenchmarkAblationStats(b *testing.B) {
	sc := benchScale()
	var last *bench.AblationStatsResult
	for i := 0; i < b.N; i++ {
		r, err := bench.RunAblationStats(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(msOf(last.WithStatsTime), "ms-with-stats")
	b.ReportMetric(msOf(last.WithoutStatsTime), "ms-without-stats")
	b.ReportMetric(float64(last.SkippedChunks), "chunks-skipped")
}

// BenchmarkAblationWriteGranularity compares speculative one-at-a-time
// writes against buffered batch-on-eviction writes.
func BenchmarkAblationWriteGranularity(b *testing.B) {
	sc := benchScale()
	var last *bench.AblationWriteGranularityResult
	for i := 0; i < b.N; i++ {
		r, err := bench.RunAblationWriteGranularity(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(msOf(last.SpeculativeTime), "ms-speculative")
	b.ReportMetric(msOf(last.BufferedTime), "ms-buffered")
}

// BenchmarkAblationPositionalMap compares repeat queries with and without
// the positional-map cache (the paper predicts little benefit).
func BenchmarkAblationPositionalMap(b *testing.B) {
	sc := benchScale()
	var last *bench.AblationPositionalMapResult
	for i := 0; i < b.N; i++ {
		r, err := bench.RunAblationPositionalMap(sc, 2)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(msOf(last.WithMapTimes[1]), "ms-q2-with-maps")
	b.ReportMetric(msOf(last.WithoutMapTimes[1]), "ms-q2-without-maps")
}

// BenchmarkAblationPushdown compares push-down selection in PARSE against
// parse-then-filter at the conversion layer.
func BenchmarkAblationPushdown(b *testing.B) {
	sc := benchScale()
	var last *bench.AblationPushdownResult
	for i := 0; i < b.N; i++ {
		r, err := bench.RunAblationPushdown(sc)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(msOf(last.PushdownTime), "ms-pushdown")
	b.ReportMetric(msOf(last.StandardTime), "ms-standard")
	b.ReportMetric(100*last.Selectivity, "%selectivity")
}

// BenchmarkSuiteRender exercises the full rendering path end to end at
// minimal scale.
func BenchmarkSuiteRender(b *testing.B) {
	sc := benchScale()
	sc.Rows = 1 << 11
	sc.SAMReads = 2000
	for i := 0; i < b.N; i++ {
		for _, exp := range []bench.Experiment{bench.ExpFig8, bench.ExpTable1} {
			if err := bench.Run(exp, sc, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}
